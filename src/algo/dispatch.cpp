#include "algo/dispatch.hpp"

#include <stdexcept>
#include <utility>

#include "api/registry.hpp"
#include "core/components.hpp"

namespace busytime {

std::string to_string(MinBusyAlgo algo) {
  switch (algo) {
    case MinBusyAlgo::kOneSided: return "one_sided";
    case MinBusyAlgo::kProperCliqueDp: return "proper_clique_dp";
    case MinBusyAlgo::kCliqueMatching: return "clique_matching";
    case MinBusyAlgo::kCliqueSetCover: return "clique_setcover";
    case MinBusyAlgo::kBestCut: return "best_cut";
    case MinBusyAlgo::kFirstFit: return "first_fit";
  }
  return "unknown";
}

std::optional<MinBusyAlgo> minbusy_algo_from_name(const std::string& name) {
  if (name == "one_sided") return MinBusyAlgo::kOneSided;
  if (name == "proper_clique_dp") return MinBusyAlgo::kProperCliqueDp;
  if (name == "clique_matching") return MinBusyAlgo::kCliqueMatching;
  if (name == "clique_setcover") return MinBusyAlgo::kCliqueSetCover;
  if (name == "best_cut") return MinBusyAlgo::kBestCut;
  if (name == "first_fit") return MinBusyAlgo::kFirstFit;
  return std::nullopt;
}

DispatchResult solve_minbusy_auto(const Instance& inst) {
  const auto& candidates = SolverRegistry::instance().dispatchable();
  DispatchResult result;
  result.schedule = solve_per_component(inst, [&](const Instance& sub) {
    for (const SolverInfo* info : candidates) {
      if (!info->applicable(sub)) continue;
      result.names.push_back(info->name);
      result.component_jobs.push_back(sub.size());
      result.algos.push_back(
          minbusy_algo_from_name(info->name).value_or(MinBusyAlgo::kFirstFit));
      SolverSpec spec;
      spec.name = info->name;
      SolveResult r = info->run(sub, spec);
      return std::move(r.schedule);
    }
    // first_fit registers with an always-true predicate, so this is
    // unreachable unless the registry was emptied.
    throw std::logic_error("no dispatchable solver applies to " + sub.summary());
  });
  return result;
}

}  // namespace busytime

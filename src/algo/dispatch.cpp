#include "algo/dispatch.hpp"

#include "algo/best_cut.hpp"
#include "algo/clique_matching.hpp"
#include "algo/clique_setcover.hpp"
#include "algo/first_fit.hpp"
#include "algo/one_sided.hpp"
#include "algo/proper_clique_dp.hpp"
#include "core/classify.hpp"
#include "core/components.hpp"

namespace busytime {

std::string to_string(MinBusyAlgo algo) {
  switch (algo) {
    case MinBusyAlgo::kOneSided: return "one_sided";
    case MinBusyAlgo::kProperCliqueDp: return "proper_clique_dp";
    case MinBusyAlgo::kCliqueMatching: return "clique_matching";
    case MinBusyAlgo::kCliqueSetCover: return "clique_setcover";
    case MinBusyAlgo::kBestCut: return "best_cut";
    case MinBusyAlgo::kFirstFit: return "first_fit";
  }
  return "unknown";
}

namespace {

MinBusyAlgo pick(const Instance& sub) {
  const InstanceClass cls = classify(sub);
  if (cls.one_sided) return MinBusyAlgo::kOneSided;
  if (cls.proper_clique()) return MinBusyAlgo::kProperCliqueDp;
  if (cls.clique && sub.g() == 2) return MinBusyAlgo::kCliqueMatching;
  if (cls.clique &&
      clique_setcover_family_size(sub.size(), sub.g()) <= kMaxSetCoverFamily)
    return MinBusyAlgo::kCliqueSetCover;
  if (cls.proper) return MinBusyAlgo::kBestCut;
  return MinBusyAlgo::kFirstFit;
}

Schedule run(MinBusyAlgo algo, const Instance& sub) {
  switch (algo) {
    case MinBusyAlgo::kOneSided: return solve_one_sided(sub);
    case MinBusyAlgo::kProperCliqueDp: return solve_proper_clique_dp(sub);
    case MinBusyAlgo::kCliqueMatching: return solve_clique_g2_matching(sub);
    case MinBusyAlgo::kCliqueSetCover: return solve_clique_setcover(sub);
    case MinBusyAlgo::kBestCut: return solve_best_cut(sub);
    case MinBusyAlgo::kFirstFit: return solve_first_fit(sub);
  }
  return solve_first_fit(sub);
}

}  // namespace

DispatchResult solve_minbusy_auto(const Instance& inst) {
  DispatchResult result;
  result.schedule = solve_per_component(inst, [&](const Instance& sub) {
    const MinBusyAlgo algo = pick(sub);
    result.algos.push_back(algo);
    return run(algo, sub);
  });
  return result;
}

}  // namespace busytime

#include "algo/dispatch.hpp"

#include <stdexcept>
#include <utility>

#include "api/registry.hpp"
#include "core/components.hpp"
#include "core/instance_view.hpp"
#include "exec/thread_pool.hpp"

namespace busytime {

std::string to_string(MinBusyAlgo algo) {
  switch (algo) {
    case MinBusyAlgo::kOneSided: return "one_sided";
    case MinBusyAlgo::kProperCliqueDp: return "proper_clique_dp";
    case MinBusyAlgo::kCliqueMatching: return "clique_matching";
    case MinBusyAlgo::kCliqueSetCover: return "clique_setcover";
    case MinBusyAlgo::kBestCut: return "best_cut";
    case MinBusyAlgo::kFirstFit: return "first_fit";
  }
  return "unknown";
}

std::optional<MinBusyAlgo> minbusy_algo_from_name(const std::string& name) {
  if (name == "one_sided") return MinBusyAlgo::kOneSided;
  if (name == "proper_clique_dp") return MinBusyAlgo::kProperCliqueDp;
  if (name == "clique_matching") return MinBusyAlgo::kCliqueMatching;
  if (name == "clique_setcover") return MinBusyAlgo::kCliqueSetCover;
  if (name == "best_cut") return MinBusyAlgo::kBestCut;
  if (name == "first_fit") return MinBusyAlgo::kFirstFit;
  return std::nullopt;
}

DispatchResult solve_minbusy_auto(const InstanceView& view, int threads,
                                  const RequestContext* context) {
  // Resolve the registry before fanning out: registration is not expected
  // under a running dispatch, and the dispatch order must be one snapshot.
  const auto& candidates = SolverRegistry::instance().dispatchable();
  const Instance& inst = view.instance();
  const std::size_t count = view.component_count();

  std::vector<Schedule> parts(count);
  std::vector<std::string> names(count);
  exec::parallel_for(threads, count, [&](std::size_t i) {
    // The component boundary is the deadline/cancellation granularity: a
    // control that trips here aborts the dispatch (parallel_for skips the
    // remaining components and rethrows), never a running solver.
    if (context != nullptr) context->check();
    const Instance& sub = view.component_instance(i);
    const InstanceClass& cls = view.component_class(i);
    for (const SolverInfo* info : candidates) {
      if (!info->is_applicable(sub, cls)) continue;
      SolverSpec spec;
      spec.name = info->name;
      SolveResult r = info->run(sub, spec);
      parts[i] = std::move(r.schedule);
      names[i] = info->name;
      return;
    }
    // first_fit registers with an always-true predicate, so this is
    // unreachable unless the registry was emptied.
    throw std::logic_error("no dispatchable solver applies to " + sub.summary());
  });

  DispatchResult result;
  result.schedule = stitch_component_schedules(inst, view.components(), parts);
  result.names.reserve(count);
  result.component_jobs.reserve(count);
  result.algos.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    result.names.push_back(std::move(names[i]));
    result.component_jobs.push_back(view.component_ids(i).size());
    result.algos.push_back(
        minbusy_algo_from_name(result.names.back()).value_or(MinBusyAlgo::kFirstFit));
  }
  return result;
}

DispatchResult solve_minbusy_auto(const Instance& inst, int threads,
                                  const RequestContext* context) {
  const InstanceView view(inst, threads);
  return solve_minbusy_auto(view, threads, context);
}

DispatchResult solve_minbusy_auto(const Instance& inst, int threads) {
  return solve_minbusy_auto(inst, threads, nullptr);
}

DispatchResult solve_minbusy_auto(const Instance& inst) {
  return solve_minbusy_auto(inst, 0, nullptr);
}

}  // namespace busytime

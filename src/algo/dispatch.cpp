#include "algo/dispatch.hpp"

#include <chrono>
#include <stdexcept>
#include <utility>

#include "api/registry.hpp"
#include "core/components.hpp"
#include "core/instance_view.hpp"
#include "exec/thread_pool.hpp"
#include "obs/hooks.hpp"

namespace busytime {

std::string to_string(MinBusyAlgo algo) {
  switch (algo) {
    case MinBusyAlgo::kOneSided: return "one_sided";
    case MinBusyAlgo::kProperCliqueDp: return "proper_clique_dp";
    case MinBusyAlgo::kCliqueMatching: return "clique_matching";
    case MinBusyAlgo::kCliqueSetCover: return "clique_setcover";
    case MinBusyAlgo::kBestCut: return "best_cut";
    case MinBusyAlgo::kFirstFit: return "first_fit";
  }
  return "unknown";
}

std::optional<MinBusyAlgo> minbusy_algo_from_name(const std::string& name) {
  if (name == "one_sided") return MinBusyAlgo::kOneSided;
  if (name == "proper_clique_dp") return MinBusyAlgo::kProperCliqueDp;
  if (name == "clique_matching") return MinBusyAlgo::kCliqueMatching;
  if (name == "clique_setcover") return MinBusyAlgo::kCliqueSetCover;
  if (name == "best_cut") return MinBusyAlgo::kBestCut;
  if (name == "first_fit") return MinBusyAlgo::kFirstFit;
  return std::nullopt;
}

DispatchResult solve_minbusy_auto(const InstanceView& view, int threads,
                                  const RequestContext* context) {
  // Resolve the registry before fanning out: registration is not expected
  // under a running dispatch, and the dispatch order must be one snapshot.
  const auto& candidates = SolverRegistry::instance().dispatchable();
  const Instance& inst = view.instance();
  const std::size_t count = view.component_count();

  // Deterministic counts: one dispatch run, `count` components, inst.size()
  // jobs — identical totals at every worker count.  Only the *_us
  // histograms carry wall-clock values.
  obs::MetricsRegistry& sink = obs::metrics_of(context);
  sink.counter(obs::metric::kSolveDispatchRuns).inc();
  sink.counter(obs::metric::kSolveComponentsSolved).add(count);
  sink.counter(obs::metric::kSolveJobsDispatched).add(inst.size());
  const obs::Histogram component_jobs_hist =
      sink.histogram(obs::metric::kSolveComponentJobs);
  const obs::Histogram component_us_hist =
      sink.histogram(obs::metric::kSolveComponentSolveUs);
  obs::TraceContext* spans = obs::trace_of(context);
  const obs::ScopedSpan dispatch_span(spans, "dispatch",
                                      obs::span_parent(context),
                                      static_cast<std::int64_t>(count));

  std::vector<Schedule> parts(count);
  std::vector<std::string> names(count);
  exec::parallel_for(threads, count, [&](std::size_t i) {
    // The component boundary is the deadline/cancellation granularity: a
    // control that trips here aborts the dispatch (parallel_for skips the
    // remaining components and rethrows), never a running solver.
    if (context != nullptr) context->check();
    const Instance& sub = view.component_instance(i);
    const InstanceClass& cls = view.component_class(i);
    const auto c0 = std::chrono::steady_clock::now();
    for (const SolverInfo* info : candidates) {
      if (!info->is_applicable(sub, cls)) continue;
      SolverSpec spec;
      spec.name = info->name;
      SolveResult r = info->run(sub, spec);
      parts[i] = std::move(r.schedule);
      names[i] = info->name;
      const auto c1 = std::chrono::steady_clock::now();
      component_jobs_hist.record(sub.size());
      component_us_hist.record(static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::microseconds>(c1 - c0)
              .count()));
      if (spans != nullptr)
        spans->add("component:" + info->name, dispatch_span.id(), c0, c1,
                   static_cast<std::int64_t>(sub.size()));
      return;
    }
    // first_fit registers with an always-true predicate, so this is
    // unreachable unless the registry was emptied.
    throw std::logic_error("no dispatchable solver applies to " + sub.summary());
  });

  DispatchResult result;
  {
    const obs::ScopedSpan merge_span(spans, "merge", dispatch_span.id(),
                                     static_cast<std::int64_t>(inst.size()));
    result.schedule = stitch_component_schedules(inst, view.components(), parts);
  }
  result.names.reserve(count);
  result.component_jobs.reserve(count);
  result.algos.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    result.names.push_back(std::move(names[i]));
    result.component_jobs.push_back(view.component_ids(i).size());
    result.algos.push_back(
        minbusy_algo_from_name(result.names.back()).value_or(MinBusyAlgo::kFirstFit));
  }
  return result;
}

DispatchResult solve_minbusy_auto(const Instance& inst, int threads,
                                  const RequestContext* context) {
  // No cached decomposition for this request: build the view inline, under
  // a "view_build" span (with the classification phase as its "classify"
  // child; value = component count once known).
  obs::metrics_of(context).counter(obs::metric::kSolveViewBuildsInline).inc();
  obs::TraceContext* spans = obs::trace_of(context);
  const std::uint32_t build_span =
      spans != nullptr ? spans->open("view_build", obs::span_parent(context))
                       : 0;
  const InstanceView view(inst, threads, spans, build_span);
  if (spans != nullptr) {
    spans->set_value(build_span,
                     static_cast<std::int64_t>(view.component_count()));
    spans->close(build_span);
  }
  return solve_minbusy_auto(view, threads, context);
}

DispatchResult solve_minbusy_auto(const Instance& inst, int threads) {
  return solve_minbusy_auto(inst, threads, nullptr);
}

DispatchResult solve_minbusy_auto(const Instance& inst) {
  return solve_minbusy_auto(inst, 0, nullptr);
}

}  // namespace busytime

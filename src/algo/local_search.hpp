// Local-search post-optimization for MinBusy schedules.
//
// Not part of the paper's algorithm suite — an engineering ablation: given
// any valid schedule, hill-climb with two move types until a local optimum:
//
//   relocate(j, m)  move job j to machine m (existing or fresh);
//   swap(j, k)      exchange the machines of jobs j and k.
//
// Every accepted move strictly decreases the total busy time, so the search
// terminates; each round is O(n * machines) cost evaluations on incremental
// machine sets.  The T-3.3/T-3.2 benches use it to show how much slack the
// approximation algorithms leave on typical (non-adversarial) inputs.
#pragma once

#include "core/instance.hpp"
#include "core/schedule.hpp"

namespace busytime {

struct LocalSearchStats {
  int relocations = 0;
  int swaps = 0;
  int rounds = 0;
  Time initial_cost = 0;
  Time final_cost = 0;
};

/// Improves `schedule` in place until no single relocate/swap helps, or
/// `max_rounds` full passes elapse.  The input must be valid; validity is
/// preserved.  Unscheduled jobs stay unscheduled.
LocalSearchStats improve_schedule(const Instance& inst, Schedule& schedule,
                                  int max_rounds = 50);

}  // namespace busytime

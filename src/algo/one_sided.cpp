#include "algo/one_sided.hpp"

#include <algorithm>
#include <cassert>

#include "core/classify.hpp"

namespace busytime {

Schedule solve_one_sided(const Instance& inst) {
  assert(is_one_sided(inst));
  const auto& ids = inst.ids_by_length_desc();
  const std::size_t g = static_cast<std::size_t>(inst.g());
  Schedule s(inst.size());
  for (std::size_t k = 0; k < ids.size(); ++k)
    s.assign(ids[k], static_cast<MachineId>(k / g));
  return s;
}

Time one_sided_cost(std::vector<Time> lengths, int g) {
  assert(g >= 1);
  std::sort(lengths.begin(), lengths.end(), std::greater<>());
  Time cost = 0;
  for (std::size_t k = 0; k < lengths.size(); k += static_cast<std::size_t>(g))
    cost += lengths[k];
  return cost;
}

}  // namespace busytime

// Schedule representation and cost accounting.
//
// A (partial) schedule is a function from jobs to machines (Section 2).  We
// store it as a dense vector indexed by JobId; kUnscheduled marks jobs left
// out by a partial MaxThroughput schedule.  Machines are identified by dense
// non-negative integers; the machine pool is conceptually infinite, so any
// machine id is legal.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/instance.hpp"

namespace busytime {

using MachineId = std::int32_t;

class Schedule {
 public:
  static constexpr MachineId kUnscheduled = -1;

  Schedule() = default;
  /// Creates an all-unscheduled schedule for `n` jobs.
  explicit Schedule(std::size_t n) : assignment_(n, kUnscheduled) {}
  /// Wraps an explicit assignment vector.
  explicit Schedule(std::vector<MachineId> assignment)
      : assignment_(std::move(assignment)) {}

  std::size_t size() const noexcept { return assignment_.size(); }

  MachineId machine_of(JobId j) const { return assignment_.at(static_cast<std::size_t>(j)); }
  bool is_scheduled(JobId j) const { return machine_of(j) != kUnscheduled; }

  void assign(JobId j, MachineId m) { assignment_.at(static_cast<std::size_t>(j)) = m; }
  void unschedule(JobId j) { assign(j, kUnscheduled); }

  /// Grows the schedule to hold at least `n` jobs; new slots are
  /// unscheduled.  Never shrinks.  Used by the streaming engine, where the
  /// final job count is unknown while jobs arrive.
  void ensure_size(std::size_t n) {
    if (n > assignment_.size()) assignment_.resize(n, kUnscheduled);
  }

  /// Appends one job's assignment and returns its JobId, for callers that
  /// number jobs in arrival order.
  JobId append(MachineId m) {
    assignment_.push_back(m);
    return static_cast<JobId>(assignment_.size() - 1);
  }

  const std::vector<MachineId>& assignment() const noexcept { return assignment_; }

  /// Number of scheduled jobs — tput(s) in Section 2.
  std::int64_t throughput() const noexcept;

  /// Total scheduled weight (Section 5 weighted-throughput extension).
  std::int64_t weighted_throughput(const Instance& inst) const;

  /// Largest machine id used plus one (0 if no job is scheduled).
  std::int32_t machine_count() const noexcept;

  /// Job ids per machine, indexed by machine id in [0, machine_count()).
  std::vector<std::vector<JobId>> jobs_per_machine() const;

  /// busy_i = span(J_i): union length of the jobs on machine m.
  Time machine_busy_time(const Instance& inst, MachineId m) const;

  /// cost(s) = Σ_i busy_i over all machines (Section 2).
  Time cost(const Instance& inst) const;

  /// sav(s) = len(scheduled jobs) - cost(s): the overlap saving relative to
  /// the one-job-per-machine schedule (Section 2).  For full schedules this
  /// is len(J) - cost(s).
  Time saving(const Instance& inst) const;

  /// Renumbers machines to a dense 0..k-1 range preserving job grouping.
  void compact();

 private:
  std::vector<MachineId> assignment_;
};

/// Builds the trivial full schedule that gives every job its own machine
/// (the schedule s-bar in Section 2, cost = len(J)).
Schedule one_job_per_machine(const Instance& inst);

/// Builds a full schedule from explicit machine groups: groups[m] lists the
/// job ids on machine m.  Jobs not mentioned stay unscheduled.
Schedule schedule_from_groups(std::size_t n,
                              const std::vector<std::vector<JobId>>& groups);

}  // namespace busytime

// Fundamental time and interval types.
//
// All times are 64-bit integers and all job intervals are half-open
// [start, completion).  Half-open semantics implement the paper's convention
// that "a job [s, c] is not being processed at time c" (Section 2): two
// intervals overlap iff their intersection has positive length, so [1,2) and
// [2,3) do NOT overlap and can share a thread of execution.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <ostream>
#include <vector>

namespace busytime {

/// Integer time coordinate.  Integer arithmetic keeps every cost computation
/// exact; generators scale rational paper constructions to integers.
using Time = std::int64_t;

/// Half-open time interval [start, completion).
struct Interval {
  Time start = 0;
  Time completion = 0;

  constexpr Interval() = default;
  constexpr Interval(Time s, Time c) : start(s), completion(c) { assert(s <= c); }

  /// len(I) = c_I - s_I (Definition 2.1).
  constexpr Time length() const noexcept { return completion - start; }

  constexpr bool empty() const noexcept { return completion <= start; }

  /// Two intervals overlap iff their intersection contains more than one
  /// point (Definition 2.2), i.e. has positive length.
  constexpr bool overlaps(const Interval& other) const noexcept {
    return std::max(start, other.start) < std::min(completion, other.completion);
  }

  /// Length of the intersection, clipped at zero.
  constexpr Time overlap_length(const Interval& other) const noexcept {
    const Time lo = std::max(start, other.start);
    const Time hi = std::min(completion, other.completion);
    return hi > lo ? hi - lo : 0;
  }

  /// True if this interval contains `other` (not necessarily properly).
  constexpr bool contains(const Interval& other) const noexcept {
    return start <= other.start && other.completion <= completion;
  }

  /// True if this interval properly contains `other`: contains it and the
  /// two are distinct (used by the "proper instance" definition).
  constexpr bool properly_contains(const Interval& other) const noexcept {
    return contains(other) && (start != other.start || completion != other.completion);
  }

  constexpr bool contains_time(Time t) const noexcept {
    return start <= t && t < completion;
  }

  /// Smallest interval containing both (the "hull"); for a clique set the
  /// hull length equals the span.
  constexpr Interval hull(const Interval& other) const noexcept {
    Interval h;
    h.start = std::min(start, other.start);
    h.completion = std::max(completion, other.completion);
    return h;
  }

  friend constexpr bool operator==(const Interval& a, const Interval& b) noexcept {
    return a.start == b.start && a.completion == b.completion;
  }
  friend constexpr bool operator!=(const Interval& a, const Interval& b) noexcept {
    return !(a == b);
  }
};

inline std::ostream& operator<<(std::ostream& os, const Interval& iv) {
  return os << "[" << iv.start << "," << iv.completion << ")";
}

/// Total length Σ len(I) over a set of intervals (Definition 2.1).
Time total_length(const std::vector<Interval>& intervals) noexcept;

/// Length of the union ∪I of a set of intervals — span(I) in Definition 2.2.
/// O(k log k); the input is copied and sorted.
Time union_length(std::vector<Interval> intervals);

/// The union ∪I as a minimal sorted list of disjoint, non-touching maximal
/// intervals (SPAN(I) in Definition 2.2 may be disconnected for non-clique
/// sets; the paper's WLOG splits such machines, we keep the pieces).
std::vector<Interval> union_intervals(std::vector<Interval> intervals);

inline Time total_length(const std::vector<Interval>& intervals) noexcept {
  Time sum = 0;
  for (const auto& iv : intervals) sum += iv.length();
  return sum;
}

inline std::vector<Interval> union_intervals(std::vector<Interval> intervals) {
  if (intervals.empty()) return {};
  std::sort(intervals.begin(), intervals.end(), [](const Interval& a, const Interval& b) {
    return a.start != b.start ? a.start < b.start : a.completion < b.completion;
  });
  std::vector<Interval> merged;
  merged.push_back(intervals.front());
  for (std::size_t i = 1; i < intervals.size(); ++i) {
    // Touching intervals ([1,2) and [2,3)) merge into one busy segment: the
    // machine never goes idle in between, so the busy length is additive
    // either way; merging keeps the representation minimal.
    if (intervals[i].start <= merged.back().completion) {
      merged.back().completion = std::max(merged.back().completion, intervals[i].completion);
    } else {
      merged.push_back(intervals[i]);
    }
  }
  return merged;
}

inline Time union_length(std::vector<Interval> intervals) {
  Time sum = 0;
  for (const auto& iv : union_intervals(std::move(intervals))) sum += iv.length();
  return sum;
}

}  // namespace busytime

// Instance classification (Section 2 "Special cases").
//
// The algorithm dispatcher and the tests use these predicates to route an
// instance to the strongest applicable algorithm:
//
//   clique        — some time t is common to all jobs (interval graph is a
//                   clique);
//   proper        — no job interval properly contains another;
//   one-sided     — clique where all jobs share a start time or all share a
//                   completion time;
//   proper clique — both clique and proper.
#pragma once

#include <optional>

#include "core/instance.hpp"

namespace busytime {

/// True iff some time point lies in every job's half-open interval.
/// Equivalent to max(start) < min(completion).  O(n).
bool is_clique(const Instance& inst);

/// If the instance is a clique, returns a witness time common to all jobs
/// (the paper's time t in Section 4.1); otherwise nullopt.
std::optional<Time> clique_time(const Instance& inst);

/// True iff no job properly contains another.  O(n log n).
bool is_proper(const Instance& inst);

/// True iff all jobs share a start time, or all share a completion time.
bool is_one_sided(const Instance& inst);

/// Aggregated classification, computed in one pass for dispatch/reporting.
struct InstanceClass {
  bool clique = false;
  bool proper = false;
  bool one_sided = false;
  bool proper_clique() const noexcept { return clique && proper; }
};
InstanceClass classify(const Instance& inst);

}  // namespace busytime

#include "core/classify.hpp"

#include <algorithm>

namespace busytime {

std::optional<Time> clique_time(const Instance& inst) {
  if (inst.empty()) return std::nullopt;
  Time max_start = inst.jobs().front().start();
  Time min_completion = inst.jobs().front().completion();
  for (const auto& j : inst.jobs()) {
    max_start = std::max(max_start, j.start());
    min_completion = std::min(min_completion, j.completion());
  }
  // Half-open intervals: the intersection [max_start, min_completion) is a
  // set of common times iff it is non-empty.  (The paper requires the
  // pairwise intersections to have positive length for jobs to "overlap";
  // a clique set shares a full sub-interval, so strict < is the right test.)
  if (max_start < min_completion) return max_start;
  return std::nullopt;
}

bool is_clique(const Instance& inst) { return clique_time(inst).has_value(); }

bool is_proper(const Instance& inst) {
  // Sort by (start asc, completion desc); a properly contained job appears
  // after its container, with completion <= container's.  Track the running
  // max completion among jobs with strictly smaller start, plus exact-prefix
  // duplicates separately.
  const auto& ids = inst.ids_by_start();
  // proper <=> sorting by start also sorts by completion (non-decreasing),
  // with the caveat that equal intervals are allowed (they don't *properly*
  // contain each other) and equal starts with different completions are a
  // violation (the longer properly contains the shorter).
  for (std::size_t k = 1; k < ids.size(); ++k) {
    const auto& prev = inst.job(ids[k - 1]).interval;
    const auto& cur = inst.job(ids[k]).interval;
    if (prev.start == cur.start) {
      if (prev.completion != cur.completion) return false;
    } else if (cur.completion <= prev.completion) {
      // prev starts strictly earlier and ends no earlier: proper containment.
      return false;
    }
  }
  return true;
}

bool is_one_sided(const Instance& inst) {
  if (inst.size() <= 1) return true;
  bool same_start = true;
  bool same_completion = true;
  const Time s0 = inst.jobs().front().start();
  const Time c0 = inst.jobs().front().completion();
  for (const auto& j : inst.jobs()) {
    same_start &= (j.start() == s0);
    same_completion &= (j.completion() == c0);
  }
  return same_start || same_completion;
}

InstanceClass classify(const Instance& inst) {
  InstanceClass c;
  c.clique = is_clique(inst);
  c.proper = is_proper(inst);
  c.one_sided = c.clique && is_one_sided(inst);
  return c;
}

}  // namespace busytime

#include "core/instance_view.hpp"

#include "core/components.hpp"
#include "exec/thread_pool.hpp"
#include "obs/trace.hpp"

namespace busytime {

InstanceView::InstanceView(const Instance& inst, int threads,
                           obs::TraceContext* trace,
                           std::uint32_t trace_parent)
    : inst_(&inst),
      order_(&inst.ids_by_start()),
      components_(connected_components(inst)) {
  const obs::ScopedSpan classify_span(
      trace, "classify", trace_parent,
      static_cast<std::int64_t>(components_.size()));
  subs_.resize(components_.size());
  classes_.resize(components_.size());
  exec::parallel_for(threads, components_.size(), [&](std::size_t i) {
    subs_[i] = inst.restricted_to(components_[i]);
    classes_[i] = classify(subs_[i]);
  });
}

}  // namespace busytime

#include "core/validate.hpp"

#include <algorithm>
#include <cassert>
#include <sstream>
#include <vector>

#include "intervalgraph/sweepline.hpp"

namespace busytime {

std::string Violation::to_string() const {
  std::ostringstream os;
  os << "machine " << machine << " runs " << concurrency << " jobs at time " << time;
  return os.str();
}

std::optional<Violation> find_violation(const Instance& inst, const Schedule& s) {
  assert(inst.size() == s.size());
  const auto per_machine = s.jobs_per_machine();
  for (std::size_t m = 0; m < per_machine.size(); ++m) {
    if (per_machine[m].size() <= static_cast<std::size_t>(inst.g())) continue;
    std::vector<Interval> ivs;
    ivs.reserve(per_machine[m].size());
    for (JobId j : per_machine[m]) ivs.push_back(inst.job(j).interval);
    const auto peak = peak_overlap(ivs);
    if (peak.count > inst.g()) {
      return Violation{static_cast<MachineId>(m), peak.time, peak.count};
    }
  }
  return std::nullopt;
}

bool is_valid(const Instance& inst, const Schedule& s) {
  return !find_violation(inst, s).has_value();
}

int max_concurrency(const Instance& inst) {
  return peak_overlap(inst.intervals()).count;
}

}  // namespace busytime

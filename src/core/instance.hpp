// Problem instance: a set of jobs plus the parallelism parameter g.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "core/job.hpp"
#include "core/time_types.hpp"

namespace busytime {

/// An instance (J, g) of MinBusy, or the job/capacity part of a
/// MaxThroughput instance (J, g, T).
///
/// Invariants (checked in debug builds on construction):
///  * every job has positive length;
///  * g >= 1.
class Instance {
 public:
  Instance() = default;
  Instance(std::vector<Job> jobs, int g);

  const std::vector<Job>& jobs() const noexcept { return jobs_; }
  const Job& job(JobId id) const { return jobs_.at(static_cast<std::size_t>(id)); }
  std::size_t size() const noexcept { return jobs_.size(); }
  bool empty() const noexcept { return jobs_.empty(); }
  int g() const noexcept { return g_; }

  /// len(J) = Σ_j len(J_j).
  Time total_length() const noexcept;

  /// span(J) = length of ∪_j J_j.
  Time span() const;

  /// All job intervals, in job-id order.
  std::vector<Interval> intervals() const;

  /// Job ids sorted by non-decreasing start time (ties: by completion).
  /// For proper instances this is exactly the paper's order J1 <= J2 <= ...
  std::vector<JobId> ids_by_start() const;

  /// Job ids sorted by non-increasing length (FirstFit order).
  std::vector<JobId> ids_by_length_desc() const;

  /// Sub-instance restricted to `ids` (job ids renumbered 0..k-1 in the
  /// given order); used by per-component and per-bucket decompositions.
  Instance restricted_to(const std::vector<JobId>& ids) const;

  /// Human-readable one-line summary for logs and error messages.
  std::string summary() const;

 private:
  std::vector<Job> jobs_;
  int g_ = 1;
};

}  // namespace busytime

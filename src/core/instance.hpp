// Problem instance: a set of jobs plus the parallelism parameter g.
#pragma once

#include <cstddef>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/job.hpp"
#include "core/time_types.hpp"

namespace busytime {

/// An instance (J, g) of MinBusy, or the job/capacity part of a
/// MaxThroughput instance (J, g, T).
///
/// Invariants (checked in debug builds on construction):
///  * every job has positive length;
///  * g >= 1.
///
/// An Instance is immutable after construction (the only mutation is
/// whole-object assignment), so the sorted-id orders below are memoized:
/// the first call pays the O(n log n) sort, every later call — including
/// concurrent calls from solver threads — returns the cached vector.
/// Copies share the cache (their jobs are identical); assignment replaces
/// it together with the jobs, which is what keeps it consistent.
class Instance {
 public:
  Instance() = default;
  Instance(std::vector<Job> jobs, int g);

  Instance(const Instance&) = default;
  Instance& operator=(const Instance&) = default;
  // Moves hand the cache to the destination and leave the source with a
  // fresh empty one, so cache_ is never null and the memoized accessors
  // stay race-free even on a revived moved-from instance.
  Instance(Instance&& other) noexcept;
  Instance& operator=(Instance&& other) noexcept;

  const std::vector<Job>& jobs() const noexcept { return jobs_; }
  const Job& job(JobId id) const { return jobs_.at(static_cast<std::size_t>(id)); }
  std::size_t size() const noexcept { return jobs_.size(); }
  bool empty() const noexcept { return jobs_.empty(); }
  int g() const noexcept { return g_; }

  /// len(J) = Σ_j len(J_j).
  Time total_length() const noexcept;

  /// span(J) = length of ∪_j J_j.
  Time span() const;

  /// All job intervals, in job-id order.
  std::vector<Interval> intervals() const;

  /// Job ids sorted by non-decreasing start time (ties: by completion).
  /// For proper instances this is exactly the paper's order J1 <= J2 <= ...
  /// Memoized; thread-safe.  The reference stays valid for the lifetime of
  /// this instance and of any copy sharing its cache.
  const std::vector<JobId>& ids_by_start() const;

  /// Job ids sorted by non-increasing length (FirstFit order).  Memoized;
  /// thread-safe.
  const std::vector<JobId>& ids_by_length_desc() const;

  /// Sub-instance restricted to `ids` (job ids renumbered 0..k-1 in the
  /// given order); used by per-component and per-bucket decompositions.
  Instance restricted_to(const std::vector<JobId>& ids) const;

  /// Human-readable one-line summary for logs and error messages.
  std::string summary() const;

 private:
  /// Lazily-built sorted-id orders, tied to the job-vector snapshot.
  /// std::call_once makes the build race-free when solver threads share one
  /// instance read-only.
  struct OrderCache {
    std::once_flag by_start_once;
    std::once_flag by_length_once;
    std::vector<JobId> by_start;
    std::vector<JobId> by_length;
  };

  std::vector<Job> jobs_;
  int g_ = 1;
  /// Never null (see the move operations).
  std::shared_ptr<OrderCache> cache_ = std::make_shared<OrderCache>();
};

}  // namespace busytime

// InstanceView: the read-only per-solve cache layer.
//
// One MinBusy solve needs the same derived facts over and over: the
// start-sorted id order (14 call sites across the solvers), the connected
// components, each component's sub-instance, and each component's
// core/classify result (which every applicability predicate used to
// re-derive).  An InstanceView computes all of them exactly once — the
// per-component work optionally in parallel — and exposes them as
// read-only state that solver threads share without synchronization.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/classify.hpp"
#include "core/instance.hpp"

namespace busytime {

namespace obs {
class TraceContext;
}

class InstanceView {
 public:
  /// Builds the view: components via one sweep over the memoized sorted
  /// order, then sub-instance + classification per component on up to
  /// `threads` workers (0 = process default, 1 = sequential).
  ///
  /// A non-null `trace` records the classification phase as a "classify"
  /// span (value = component count) under `parent` — the request-scoped
  /// observability hook; null (the default) costs nothing.
  explicit InstanceView(const Instance& inst, int threads = 1,
                        obs::TraceContext* trace = nullptr,
                        std::uint32_t trace_parent = 0);

  const Instance& instance() const noexcept { return *inst_; }

  /// Job ids sorted by non-decreasing start (the instance's memoized order).
  const std::vector<JobId>& order() const noexcept { return *order_; }

  std::size_t component_count() const noexcept { return components_.size(); }
  const std::vector<std::vector<JobId>>& components() const noexcept {
    return components_;
  }

  /// Original job ids of component i, in start order.
  const std::vector<JobId>& component_ids(std::size_t i) const {
    return components_[i];
  }
  /// Component i as a standalone instance (jobs renumbered 0..k-1).
  const Instance& component_instance(std::size_t i) const { return subs_[i]; }
  /// core/classify of component i, computed once at view construction.
  const InstanceClass& component_class(std::size_t i) const {
    return classes_[i];
  }

 private:
  const Instance* inst_;
  const std::vector<JobId>* order_;
  std::vector<std::vector<JobId>> components_;
  std::vector<Instance> subs_;
  std::vector<InstanceClass> classes_;
};

}  // namespace busytime

// Connected components of the interval graph.
//
// MinBusy decomposes over connected components (Section 2): machines never
// profitably mix jobs from different components, so solvers run per
// component and the costs add.
#pragma once

#include <vector>

#include "core/instance.hpp"
#include "core/schedule.hpp"
#include "exec/thread_pool.hpp"

namespace busytime {

/// Job ids of each connected component of the interval graph, in sweep
/// order.  Two jobs are adjacent iff their intervals overlap (positive
/// intersection length); touching endpoints do NOT connect.  O(n log n).
std::vector<std::vector<JobId>> connected_components(const Instance& inst);

/// Stitches per-component schedules into one schedule over the original job
/// ids, in component order: machine ids of component i are offset past the
/// highest id used by components 0..i-1, so the result is independent of
/// the order the parts were computed in.
inline Schedule stitch_component_schedules(
    const Instance& inst, const std::vector<std::vector<JobId>>& components,
    const std::vector<Schedule>& parts) {
  Schedule out(inst.size());
  MachineId base = 0;
  for (std::size_t i = 0; i < components.size(); ++i) {
    const auto& comp = components[i];
    const Schedule& part = parts[i];
    MachineId max_used = -1;
    for (std::size_t j = 0; j < comp.size(); ++j) {
      const MachineId m = part.machine_of(static_cast<JobId>(j));
      if (m == Schedule::kUnscheduled) continue;
      out.assign(comp[j], base + m);
      max_used = std::max(max_used, m);
    }
    base += max_used + 1;
  }
  return out;
}

/// Runs `solve` on each connected component as an independent sub-instance,
/// components solved concurrently on up to `threads` workers (0 = process
/// default, 1 = exact sequential path), and stitches the per-component
/// schedules deterministically in component order.  The result is identical
/// at every thread count.
///
/// `solve` must return a schedule for the sub-instance it is given and must
/// be safe to call concurrently on distinct sub-instances.
template <typename Solver>
Schedule solve_per_component_parallel(const Instance& inst, Solver&& solve,
                                      int threads) {
  const auto components = connected_components(inst);
  std::vector<Schedule> parts(components.size());
  exec::parallel_for(threads, components.size(), [&](std::size_t i) {
    parts[i] = solve(inst.restricted_to(components[i]));
  });
  return stitch_component_schedules(inst, components, parts);
}

/// Sequential per-component solve (the historical entry point); equivalent
/// to solve_per_component_parallel with threads = 1.
template <typename Solver>
Schedule solve_per_component(const Instance& inst, Solver&& solve) {
  return solve_per_component_parallel(inst, std::forward<Solver>(solve), 1);
}

}  // namespace busytime

// Connected components of the interval graph.
//
// MinBusy decomposes over connected components (Section 2): machines never
// profitably mix jobs from different components, so solvers run per
// component and the costs add.
#pragma once

#include <vector>

#include "core/instance.hpp"
#include "core/schedule.hpp"

namespace busytime {

/// Job ids of each connected component of the interval graph, in sweep
/// order.  Two jobs are adjacent iff their intervals overlap (positive
/// intersection length); touching endpoints do NOT connect.  O(n log n).
std::vector<std::vector<JobId>> connected_components(const Instance& inst);

/// Runs `solve` on each connected component as an independent sub-instance
/// and stitches the per-component schedules into one schedule over the
/// original job ids (machine ids are made disjoint across components).
///
/// `solve` must return a schedule for the sub-instance it is given.
template <typename Solver>
Schedule solve_per_component(const Instance& inst, Solver&& solve) {
  Schedule out(inst.size());
  MachineId base = 0;
  for (const auto& comp : connected_components(inst)) {
    const Instance sub = inst.restricted_to(comp);
    const Schedule part = solve(sub);
    MachineId max_used = -1;
    for (std::size_t j = 0; j < comp.size(); ++j) {
      const MachineId m = part.machine_of(static_cast<JobId>(j));
      if (m == Schedule::kUnscheduled) continue;
      out.assign(comp[j], base + m);
      max_used = std::max(max_used, m);
    }
    base += max_used + 1;
  }
  return out;
}

}  // namespace busytime

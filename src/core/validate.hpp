// Schedule validity checking.
//
// A schedule is valid iff every machine processes at most g jobs at any time
// (Section 2).  With half-open intervals this is a sweepline over
// (+1 at start, -1 at completion) events, processing departures before
// arrivals at equal times.
#pragma once

#include <optional>
#include <string>

#include "core/instance.hpp"
#include "core/schedule.hpp"

namespace busytime {

/// Description of a single capacity violation, for diagnostics.
struct Violation {
  MachineId machine = 0;
  Time time = 0;       ///< earliest time at which the capacity is exceeded
  int concurrency = 0; ///< number of concurrent jobs there (> g)
  std::string to_string() const;
};

/// Returns the first violation found, or nullopt if the schedule is valid.
/// Ignores unscheduled jobs (partial schedules are fine).  O(n log n).
std::optional<Violation> find_violation(const Instance& inst, const Schedule& s);

/// True iff `s` is a valid (partial) schedule for `inst`.
bool is_valid(const Instance& inst, const Schedule& s);

/// Maximum number of jobs of `inst` concurrently active at any time point if
/// all were placed on one machine (the clique number ω of the interval
/// graph).  A single machine can process the whole instance iff ω <= g.
int max_concurrency(const Instance& inst);

}  // namespace busytime

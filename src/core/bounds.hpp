// Lower and upper bounds on the optimal MinBusy cost (Observation 2.1).
//
// All bounds are exact integers except the parallelism bound len(J)/g, which
// we keep as an exact rational to avoid floating point in comparisons: a cost
// C satisfies the bound iff C * g >= len(J).
#pragma once

#include <cstdint>

#include "core/instance.hpp"

namespace busytime {

/// The Observation 2.1 bounds for an instance.
struct CostBounds {
  Time length = 0;              ///< len(J): upper bound on OPT
  Time span = 0;                ///< span(J): lower bound on OPT
  Time parallelism_num = 0;     ///< len(J); lower bound is len(J)/g
  int g = 1;

  /// Best certified lower bound as exact comparison helpers.
  /// lower_bound_times_g() = max(span * g, len): OPT * g >= this.
  std::int64_t lower_bound_times_g() const noexcept {
    const std::int64_t by_span = static_cast<std::int64_t>(span) * g;
    return by_span > parallelism_num ? by_span : parallelism_num;
  }

  /// Floating-point view of the best lower bound, for reporting ratios.
  double lower_bound() const noexcept {
    return static_cast<double>(lower_bound_times_g()) / static_cast<double>(g);
  }

  /// True iff `cost` respects all Observation 2.1 bounds.
  bool admissible(Time cost) const noexcept {
    return static_cast<std::int64_t>(cost) * g >= lower_bound_times_g() &&
           cost <= length;
  }
};

/// Computes the Observation 2.1 bounds for `inst`.
CostBounds compute_bounds(const Instance& inst);

/// Ratio of `cost` to the best certified lower bound (>= 1 for any valid
/// full schedule; this is the measurable stand-in for cost/OPT on instances
/// too large for the exact solver).
double ratio_to_lower_bound(const Instance& inst, Time cost);

}  // namespace busytime

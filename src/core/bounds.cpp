#include "core/bounds.hpp"

#include <cassert>

namespace busytime {

CostBounds compute_bounds(const Instance& inst) {
  CostBounds b;
  b.length = inst.total_length();
  b.span = inst.span();
  b.parallelism_num = b.length;
  b.g = inst.g();
  return b;
}

double ratio_to_lower_bound(const Instance& inst, Time cost) {
  const CostBounds b = compute_bounds(inst);
  assert(b.lower_bound_times_g() > 0);
  return static_cast<double>(cost) * static_cast<double>(b.g) /
         static_cast<double>(b.lower_bound_times_g());
}

}  // namespace busytime

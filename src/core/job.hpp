// Job model.
//
// A job is an interval that must be processed from start to completion on a
// single machine (no preemption, no migration).  The optional `weight` and
// `demand` fields support the Section 5 extensions (weighted throughput and
// per-job capacity demands); the base algorithms ignore them (weight = 1,
// demand = 1 reproduce the paper's setting).
#pragma once

#include <cstdint>
#include <ostream>

#include "core/time_types.hpp"

namespace busytime {

/// Index of a job inside an Instance.
using JobId = std::int32_t;

struct Job {
  Interval interval;
  /// Throughput weight (Section 5 "weighted throughput" extension).
  std::int64_t weight = 1;
  /// Capacity demand (Section 5 / [16] extension); base model: 1.
  std::int64_t demand = 1;

  Job() = default;
  explicit Job(Interval iv) : interval(iv) {}
  Job(Time s, Time c) : interval(s, c) {}
  Job(Time s, Time c, std::int64_t w) : interval(s, c), weight(w) {}

  Time start() const noexcept { return interval.start; }
  Time completion() const noexcept { return interval.completion; }
  Time length() const noexcept { return interval.length(); }

  friend bool operator==(const Job& a, const Job& b) noexcept {
    return a.interval == b.interval && a.weight == b.weight && a.demand == b.demand;
  }
  friend bool operator!=(const Job& a, const Job& b) noexcept { return !(a == b); }
};

inline std::ostream& operator<<(std::ostream& os, const Job& j) {
  return os << "Job" << j.interval;
}

}  // namespace busytime

#include "core/schedule.hpp"

#include <algorithm>
#include <cassert>

namespace busytime {

std::int64_t Schedule::throughput() const noexcept {
  std::int64_t n = 0;
  for (MachineId m : assignment_) n += (m != kUnscheduled);
  return n;
}

std::int64_t Schedule::weighted_throughput(const Instance& inst) const {
  assert(inst.size() == assignment_.size());
  std::int64_t w = 0;
  for (std::size_t j = 0; j < assignment_.size(); ++j)
    if (assignment_[j] != kUnscheduled) w += inst.jobs()[j].weight;
  return w;
}

std::int32_t Schedule::machine_count() const noexcept {
  MachineId max_id = kUnscheduled;
  for (MachineId m : assignment_) max_id = std::max(max_id, m);
  return max_id + 1;
}

std::vector<std::vector<JobId>> Schedule::jobs_per_machine() const {
  std::vector<std::vector<JobId>> per(static_cast<std::size_t>(machine_count()));
  for (std::size_t j = 0; j < assignment_.size(); ++j)
    if (assignment_[j] != kUnscheduled)
      per[static_cast<std::size_t>(assignment_[j])].push_back(static_cast<JobId>(j));
  return per;
}

Time Schedule::machine_busy_time(const Instance& inst, MachineId m) const {
  assert(inst.size() == assignment_.size());
  std::vector<Interval> ivs;
  for (std::size_t j = 0; j < assignment_.size(); ++j)
    if (assignment_[j] == m) ivs.push_back(inst.jobs()[j].interval);
  return union_length(std::move(ivs));
}

Time Schedule::cost(const Instance& inst) const {
  assert(inst.size() == assignment_.size());
  Time total = 0;
  for (const auto& group : jobs_per_machine()) {
    if (group.empty()) continue;
    std::vector<Interval> ivs;
    ivs.reserve(group.size());
    for (JobId j : group) ivs.push_back(inst.job(j).interval);
    total += union_length(std::move(ivs));
  }
  return total;
}

Time Schedule::saving(const Instance& inst) const {
  Time scheduled_len = 0;
  for (std::size_t j = 0; j < assignment_.size(); ++j)
    if (assignment_[j] != kUnscheduled) scheduled_len += inst.jobs()[j].length();
  return scheduled_len - cost(inst);
}

void Schedule::compact() {
  std::vector<MachineId> remap(static_cast<std::size_t>(machine_count()), kUnscheduled);
  MachineId next = 0;
  for (auto& m : assignment_) {
    if (m == kUnscheduled) continue;
    auto& slot = remap[static_cast<std::size_t>(m)];
    if (slot == kUnscheduled) slot = next++;
    m = slot;
  }
}

Schedule one_job_per_machine(const Instance& inst) {
  Schedule s(inst.size());
  for (std::size_t j = 0; j < inst.size(); ++j)
    s.assign(static_cast<JobId>(j), static_cast<MachineId>(j));
  return s;
}

Schedule schedule_from_groups(std::size_t n,
                              const std::vector<std::vector<JobId>>& groups) {
  Schedule s(n);
  for (std::size_t m = 0; m < groups.size(); ++m)
    for (JobId j : groups[m]) s.assign(j, static_cast<MachineId>(m));
  return s;
}

}  // namespace busytime

#include "core/components.hpp"

#include <algorithm>

namespace busytime {

std::vector<std::vector<JobId>> connected_components(const Instance& inst) {
  std::vector<std::vector<JobId>> components;
  const auto& ids = inst.ids_by_start();
  if (ids.empty()) return components;

  // Sweep in start order: a job overlapping the running frontier
  // (max completion so far) joins the current component.  Strict inequality:
  // a job starting exactly at the frontier only touches it and starts a new
  // component.
  Time frontier = inst.job(ids.front()).completion();
  components.push_back({ids.front()});
  for (std::size_t k = 1; k < ids.size(); ++k) {
    const auto& iv = inst.job(ids[k]).interval;
    if (iv.start < frontier) {
      components.back().push_back(ids[k]);
      frontier = std::max(frontier, iv.completion);
    } else {
      components.push_back({ids[k]});
      frontier = iv.completion;
    }
  }
  return components;
}

}  // namespace busytime

#include "core/instance.hpp"

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <functional>
#include <numeric>
#include <sstream>
#include <utility>

namespace busytime {

Instance::Instance(std::vector<Job> jobs, int g) : jobs_(std::move(jobs)), g_(g) {
  assert(g_ >= 1);
#ifndef NDEBUG
  for (const auto& j : jobs_) assert(j.length() > 0 && "jobs must have positive length");
#endif
}

Time Instance::total_length() const noexcept {
  Time sum = 0;
  for (const auto& j : jobs_) sum += j.length();
  return sum;
}

Time Instance::span() const { return union_length(intervals()); }

std::vector<Interval> Instance::intervals() const {
  std::vector<Interval> out;
  out.reserve(jobs_.size());
  for (const auto& j : jobs_) out.push_back(j.interval);
  return out;
}

Instance::Instance(Instance&& other) noexcept
    : jobs_(std::move(other.jobs_)),
      g_(other.g_),
      cache_(std::exchange(other.cache_, std::make_shared<OrderCache>())) {}

Instance& Instance::operator=(Instance&& other) noexcept {
  if (this != &other) {
    jobs_ = std::move(other.jobs_);
    g_ = other.g_;
    cache_ = std::exchange(other.cache_, std::make_shared<OrderCache>());
  }
  return *this;
}

const std::vector<JobId>& Instance::ids_by_start() const {
  OrderCache& cache = *cache_;
  std::call_once(cache.by_start_once, [&] {
    std::vector<JobId> ids(jobs_.size());
    std::iota(ids.begin(), ids.end(), 0);
    std::sort(ids.begin(), ids.end(), [&](JobId a, JobId b) {
      const auto& ja = jobs_[static_cast<std::size_t>(a)].interval;
      const auto& jb = jobs_[static_cast<std::size_t>(b)].interval;
      if (ja.start != jb.start) return ja.start < jb.start;
      if (ja.completion != jb.completion) return ja.completion < jb.completion;
      return a < b;
    });
    cache.by_start = std::move(ids);
  });
  return cache.by_start;
}

const std::vector<JobId>& Instance::ids_by_length_desc() const {
  OrderCache& cache = *cache_;
  std::call_once(cache.by_length_once, [&] {
    // Sort contiguous keys instead of ids with an indirect comparator:
    // every compare would otherwise make two random jobs_[] loads, which
    // dominates when the dispatcher computes this order for hundreds of
    // fresh component instances per solve.  Lengths are positive, so when
    // they fit 31 bits (always, for realistic horizons) the (length desc,
    // id asc) order packs into one u64 — (length << 32) | ~id sorted
    // descending — and the sort runs on plain integers.
    const std::size_t n = jobs_.size();
    constexpr Time kPackable = std::int64_t{1} << 31;
    bool packable = n <= 0xFFFFFFFFu;
    for (std::size_t i = 0; packable && i < n; ++i)
      packable = jobs_[i].length() < kPackable;
    std::vector<JobId> ids;
    if (packable) {
      std::vector<std::uint64_t> keys;
      keys.reserve(n);
      for (std::size_t i = 0; i < n; ++i)
        keys.push_back((static_cast<std::uint64_t>(jobs_[i].length()) << 32) |
                       (0xFFFFFFFFu - static_cast<std::uint32_t>(i)));
      std::sort(keys.begin(), keys.end(), std::greater<std::uint64_t>());
      ids.reserve(n);
      for (const std::uint64_t k : keys)
        ids.push_back(static_cast<JobId>(
            0xFFFFFFFFu - static_cast<std::uint32_t>(k & 0xFFFFFFFFu)));
    } else {
      ids.resize(n);
      std::iota(ids.begin(), ids.end(), 0);
      std::sort(ids.begin(), ids.end(), [&](JobId a, JobId b) {
        const Time la = jobs_[static_cast<std::size_t>(a)].length();
        const Time lb = jobs_[static_cast<std::size_t>(b)].length();
        if (la != lb) return la > lb;
        return a < b;
      });
    }
    cache.by_length = std::move(ids);
  });
  return cache.by_length;
}

Instance Instance::restricted_to(const std::vector<JobId>& ids) const {
  std::vector<Job> sub;
  sub.reserve(ids.size());
  for (JobId id : ids) sub.push_back(job(id));
  return Instance(std::move(sub), g_);
}

std::string Instance::summary() const {
  std::ostringstream os;
  os << "Instance{n=" << jobs_.size() << ", g=" << g_ << ", len=" << total_length()
     << ", span=" << span() << "}";
  return os.str();
}

}  // namespace busytime

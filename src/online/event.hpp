// Arrival events and job streams for the online engine.
//
// The online setting (cf. the serving scenarios behind the paper's cloud and
// optical applications) reveals jobs one at a time, at their start instants;
// a scheduler must commit each job to a machine without knowledge of future
// arrivals.  A JobStream adapts an offline Instance to that model by
// replaying its jobs in non-decreasing start order, which is exactly the
// order a real arrival process would deliver them in.
#pragma once

#include <cstddef>
#include <vector>

#include "core/instance.hpp"

namespace busytime {

/// One job arrival: the job id it carries in the originating instance plus
/// the job itself.  Ids are preserved so the resulting online Schedule is
/// directly comparable (cost, validity) against offline schedules of the
/// same instance.
struct ArrivalEvent {
  JobId id = 0;
  Job job;
};

/// Replays an Instance as a time-ordered arrival stream.
class JobStream {
 public:
  explicit JobStream(const Instance& inst)
      : inst_(&inst), order_(inst.ids_by_start()) {}

  bool done() const noexcept { return pos_ >= order_.size(); }
  std::size_t remaining() const noexcept { return order_.size() - pos_; }
  std::size_t size() const noexcept { return order_.size(); }

  /// Next arrival; must not be called when done().  Starts are
  /// non-decreasing across successive calls by construction.
  ArrivalEvent next() {
    const JobId id = order_[pos_++];
    return ArrivalEvent{id, inst_->job(id)};
  }

 private:
  const Instance* inst_;
  std::vector<JobId> order_;
  std::size_t pos_ = 0;
};

}  // namespace busytime

// Arrival, cancellation, and preemption events for the online engine.
//
// The online setting (cf. the serving scenarios behind the paper's cloud and
// optical applications) reveals jobs one at a time, at their start instants;
// a scheduler must commit each job to a machine without knowledge of future
// arrivals.  A JobStream adapts an offline Instance to that model by
// replaying its jobs in non-decreasing start order, which is exactly the
// order a real arrival process would deliver them in.
//
// Production streams also *retract* work: a job may be cancelled by its
// owner or preempted by the system before its advertised completion.  An
// EventTrace pairs an arrival Instance with a list of CancelRecords; an
// EventStream merges the two into one time-ordered event sequence.  The
// engine handles retractions incrementally (busy-time refunds, slot
// releases) rather than by replaying from scratch — the same
// maintain-under-deletions discipline as incremental UTVPI satisfiability
// (Schutt & Stuckey), applied to busy-time accounting.
#pragma once

#include <cstddef>
#include <memory>
#include <mutex>
#include <vector>

#include "core/instance.hpp"

namespace busytime {

/// One job arrival: the job id it carries in the originating instance plus
/// the job itself.  Ids are preserved so the resulting online Schedule is
/// directly comparable (cost, validity) against offline schedules of the
/// same instance.
struct ArrivalEvent {
  JobId id = 0;
  Job job;
};

/// One retraction: job `job` stops running at `at`.  A cancel is a user-side
/// retraction, a preemption a system-side stop; both truncate the job's run
/// to [start, at) and differ only in how the engine counts them.  A record
/// is *effective* iff start < at < completion — the job must actually be
/// mid-flight; anything else (already finished, not yet started, second
/// retraction of the same job) is a no-op counted as ignored.
struct CancelRecord {
  JobId job = 0;
  Time at = 0;
  bool preempt = false;

  friend bool operator==(const CancelRecord& a, const CancelRecord& b) noexcept {
    return a.job == b.job && a.at == b.at && a.preempt == b.preempt;
  }
  friend bool operator!=(const CancelRecord& a, const CancelRecord& b) noexcept {
    return !(a == b);
  }
};

/// Replays an Instance as a time-ordered arrival stream.
class JobStream {
 public:
  explicit JobStream(const Instance& inst)
      : inst_(&inst), order_(inst.ids_by_start()) {}

  bool done() const noexcept { return pos_ >= order_.size(); }
  std::size_t remaining() const noexcept { return order_.size() - pos_; }
  std::size_t size() const noexcept { return order_.size(); }

  /// Next arrival; must not be called when done().  Starts are
  /// non-decreasing across successive calls by construction.
  ArrivalEvent next() {
    const JobId id = order_[pos_++];
    return ArrivalEvent{id, inst_->job(id)};
  }

 private:
  const Instance* inst_;
  std::vector<JobId> order_;
  std::size_t pos_ = 0;
};

/// An arrival instance plus interleaved cancellation/preemption records —
/// the full input of a replay with retractions.
///
/// Construction canonicalizes the records: they are sorted by (at, job), and
/// records that can never take effect (at outside (start, completion), or a
/// second record for an already-retracted job) are dropped and counted in
/// dropped_cancels().  After canonicalization every surviving record is
/// effective during replay, which is what keeps sharded replay bit-identical
/// to sequential: an effective record's time always falls strictly inside
/// its job's interval, hence strictly inside its component's time range, so
/// records shard with their component.
class EventTrace {
 public:
  EventTrace() = default;
  /* implicit */ EventTrace(Instance base) : base_(std::move(base)) {}
  /// Throws std::invalid_argument when a record names a job id out of range.
  EventTrace(Instance base, std::vector<CancelRecord> cancels);

  EventTrace(const EventTrace&) = default;
  EventTrace& operator=(const EventTrace&) = default;
  // Moves hand the residual cache to the destination and leave the source
  // with a fresh empty one, so cache_ is never null (same discipline as
  // Instance's order cache).
  EventTrace(EventTrace&& other) noexcept;
  EventTrace& operator=(EventTrace&& other) noexcept;

  const Instance& base() const noexcept { return base_; }
  const std::vector<CancelRecord>& cancels() const noexcept { return cancels_; }
  bool has_cancels() const noexcept { return !cancels_.empty(); }
  /// Records dropped by canonicalization (could never take effect).
  std::size_t dropped_cancels() const noexcept { return dropped_; }

  std::size_t size() const noexcept { return base_.size(); }      ///< jobs
  std::size_t events() const noexcept { return base_.size() + cancels_.size(); }
  int g() const noexcept { return base_.g(); }

  /// The residual instance: every retracted job truncated to [start, at).
  /// A replay's final online_cost equals cost(schedule, residual()), and the
  /// residual is the honest input for offline comparisons and lower bounds.
  /// Memoized; thread-safe (solver threads share one trace read-only).  The
  /// reference stays valid for the lifetime of this trace and of any copy
  /// sharing its cache; traces without retractions return base() directly.
  const Instance& residual() const;

 private:
  /// Lazily-built residual, tied to the (immutable) base/cancels snapshot.
  struct ResidualCache {
    std::once_flag once;
    Instance residual;
  };

  Instance base_;
  std::vector<CancelRecord> cancels_;  // canonical: (at, job)-sorted, effective
  std::size_t dropped_ = 0;
  /// Never null (see the move operations).
  std::shared_ptr<ResidualCache> cache_ = std::make_shared<ResidualCache>();
};

/// Kinds of events an EventStream delivers.
enum class EventKind { kArrival, kCancel, kPreempt };

/// The canonical merge rule for interleaving retractions with arrivals; the
/// single definition EventStream and the sharded replay both use, so the
/// tie-break the sharded-equals-sequential contract depends on cannot
/// diverge between them.  At equal instants retractions come first: a job
/// cancelled at t is not running at t (half-open intervals), so its slot is
/// free for a job arriving at t.
constexpr bool retraction_precedes_arrival(Time cancel_at,
                                           Time arrival_start) noexcept {
  return cancel_at <= arrival_start;
}

/// One merged stream event.  For arrivals, time == job.start(); for
/// retractions, time is the cancel instant and `job` is the original job
/// (the scheduler needs its advertised completion to find the running copy).
struct StreamEvent {
  EventKind kind = EventKind::kArrival;
  Time time = 0;
  JobId id = 0;
  Job job;
};

/// Replays an EventTrace as one time-ordered event stream, in the
/// retraction_precedes_arrival merge order.
class EventStream {
 public:
  explicit EventStream(const EventTrace& trace)
      : trace_(&trace), order_(trace.base().ids_by_start()) {}

  bool done() const noexcept {
    return apos_ >= order_.size() && cpos_ >= trace_->cancels().size();
  }
  std::size_t remaining() const noexcept {
    return (order_.size() - apos_) + (trace_->cancels().size() - cpos_);
  }
  std::size_t size() const noexcept {
    return order_.size() + trace_->cancels().size();
  }

  /// Next event; must not be called when done().  Times are non-decreasing
  /// across successive calls.
  StreamEvent next() {
    const auto& cancels = trace_->cancels();
    const bool take_cancel =
        cpos_ < cancels.size() &&
        (apos_ >= order_.size() ||
         retraction_precedes_arrival(
             cancels[cpos_].at, trace_->base().job(order_[apos_]).start()));
    StreamEvent ev;
    if (take_cancel) {
      const CancelRecord& record = cancels[cpos_++];
      ev.kind = record.preempt ? EventKind::kPreempt : EventKind::kCancel;
      ev.time = record.at;
      ev.id = record.job;
      ev.job = trace_->base().job(record.job);
    } else {
      ev.kind = EventKind::kArrival;
      ev.id = order_[apos_++];
      ev.job = trace_->base().job(ev.id);
      ev.time = ev.job.start();
    }
    return ev;
  }

 private:
  const EventTrace* trace_;
  std::vector<JobId> order_;
  std::size_t apos_ = 0;
  std::size_t cpos_ = 0;
};

}  // namespace busytime

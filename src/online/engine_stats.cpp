#include "online/engine_stats.hpp"

#include <sstream>

namespace busytime {

std::string EngineStats::summary() const {
  std::ostringstream oss;
  oss << "jobs=" << jobs_assigned << " cost=" << online_cost
      << " machines(open=" << open_machines << " peak=" << peak_open_machines
      << " opened=" << machines_opened << " closed=" << machines_closed
      << " recycled=" << slots_recycled << ") load(active=" << active_jobs
      << " peak=" << peak_active_jobs << ")";
  if (jobs_cancelled + jobs_preempted + cancels_ignored > 0) {
    oss << " cancels(jobs=" << jobs_cancelled << " preempted=" << jobs_preempted
        << " ignored=" << cancels_ignored << " refunded=" << busy_time_refunded
        << ")";
  }
  oss << " clock=" << clock;
  return oss.str();
}

}  // namespace busytime

#include "online/engine_stats.hpp"

#include <sstream>

namespace busytime {

std::string EngineStats::summary() const {
  std::ostringstream oss;
  oss << "jobs=" << jobs_assigned << " cost=" << online_cost
      << " machines(open=" << open_machines << " peak=" << peak_open_machines
      << " opened=" << machines_opened << " closed=" << machines_closed
      << ") load(active=" << active_jobs << " peak=" << peak_active_jobs
      << ") clock=" << clock;
  return oss.str();
}

}  // namespace busytime

#include "online/stream_driver.hpp"

#include <algorithm>
#include <chrono>
#include <limits>
#include <sstream>

#include "algo/dispatch.hpp"
#include "core/bounds.hpp"
#include "core/validate.hpp"
#include "exec/thread_pool.hpp"
#include "obs/hooks.hpp"

namespace busytime {

namespace {

/// One shard: a contiguous range [begin, end) of the start-sorted order,
/// plus the contiguous range [cancel_begin, cancel_end) of the canonical
/// cancel list whose jobs fall in this shard.
struct ShardRange {
  std::size_t begin = 0;
  std::size_t end = 0;
  std::size_t cancel_begin = 0;
  std::size_t cancel_end = 0;
};

/// Cuts the start-sorted stream into shards.  A cut is legal only at a
/// component boundary (arrival start >= running frontier) whose idle gap is
/// at least `min_gap`: with min_gap = 0 that is any component boundary
/// (greedy policies), with min_gap = epoch_length it is exactly where the
/// sequential epoch-hybrid provably flushes its pending batch, so per-shard
/// replay reproduces the sequential run bit for bit.  The last shard always
/// keeps >= 2 arrivals so a later advance exists to close the previous
/// shard's post-flush batch machines the way the sequential stream would.
std::vector<ShardRange> plan_shards(const Instance& trace, int threads,
                                    std::size_t min_shard_jobs, Time min_gap) {
  const std::size_t n = trace.size();
  std::vector<ShardRange> shards;
  if (n == 0) return shards;
  if (threads <= 1 || n < 2 * std::max<std::size_t>(min_shard_jobs, 2)) {
    shards.push_back({0, n, 0, 0});
    return shards;
  }

  const auto& order = trace.ids_by_start();
  const std::size_t target = std::max(
      min_shard_jobs, n / (static_cast<std::size_t>(threads) * 4));

  std::size_t shard_begin = 0;
  Time frontier = trace.job(order.front()).completion();
  for (std::size_t k = 1; k + 2 <= n; ++k) {
    const auto& iv = trace.job(order[k]).interval;
    if (iv.start >= frontier && iv.start - frontier >= min_gap &&
        k - shard_begin >= target) {
      shards.push_back({shard_begin, k, 0, 0});
      shard_begin = k;
    }
    frontier = std::max(frontier, iv.completion);
  }
  shards.push_back({shard_begin, n, 0, 0});
  return shards;
}

/// Assigns each canonical cancel record to the shard holding its job's
/// arrival.  An effective record's time lies strictly inside its job's
/// interval, so it is strictly earlier than every event of any later shard
/// and strictly later than its shard's first arrival: the canonical
/// (time-sorted) cancel list decomposes into contiguous per-shard runs, and
/// each shard's run replays in the exact position the sequential stream
/// processes it.
void bucket_cancels(const std::vector<CancelRecord>& cancels,
                    const std::vector<std::size_t>& pos_by_id,
                    std::vector<ShardRange>& shards) {
  std::size_t next = 0;
  for (std::size_t s = 0; s < shards.size(); ++s) {
    shards[s].cancel_begin = next;
    while (next < cancels.size()) {
      const std::size_t pos =
          pos_by_id[static_cast<std::size_t>(cancels[next].job)];
      if (pos >= shards[s].end) break;
      ++next;
    }
    shards[s].cancel_end = next;
  }
}

ReplayResult replay_events(const Instance& trace,
                           const std::vector<CancelRecord>& cancels,
                           OnlinePolicy policy, const PolicyParams& params,
                           int threads, std::size_t min_shard_jobs,
                           const RequestContext* context) {
  const int t = exec::resolve_threads(threads);
  const Time min_gap =
      policy == OnlinePolicy::kEpochHybrid ? params.epoch_length : 0;
  auto shards = plan_shards(trace, t, min_shard_jobs, min_gap);

  // Deterministic counts: the shard plan depends on the *requested* thread
  // count and the trace, never on execution interleaving, so shards_run is
  // exact and assertable for a pinned request.
  obs::MetricsRegistry& sink = obs::metrics_of(context);
  sink.counter(obs::metric::kOnlineReplays).inc();
  sink.counter(obs::metric::kOnlineJobsReplayed).add(trace.size());
  sink.counter(obs::metric::kOnlineCancelsReplayed).add(cancels.size());
  sink.counter(obs::metric::kOnlineShardsRun).add(shards.size());
  const obs::Histogram shard_jobs_hist =
      sink.histogram(obs::metric::kOnlineShardJobs);
  const obs::Histogram shard_us_hist =
      sink.histogram(obs::metric::kOnlineShardReplayUs);
  obs::TraceContext* spans = obs::trace_of(context);
  const obs::ScopedSpan replay_span(spans, "replay", obs::span_parent(context),
                                    static_cast<std::int64_t>(shards.size()));

  ReplayResult result;
  result.threads = t;
  result.shards = shards.size();
  result.schedule = Schedule(trace.size());
  if (shards.empty()) return result;

  const auto& order = trace.ids_by_start();
  std::vector<std::size_t> pos_by_id;
  if (!cancels.empty()) {
    pos_by_id.resize(trace.size());
    for (std::size_t k = 0; k < order.size(); ++k)
      pos_by_id[static_cast<std::size_t>(order[k])] = k;
    bucket_cancels(cancels, pos_by_id, shards);
  }

  struct ShardRun {
    Schedule part;  // over shard-local job ids (position within the shard)
    EngineStats stats;
  };
  std::vector<ShardRun> runs(shards.size());
  exec::parallel_for(t, shards.size(), [&](std::size_t s) {
    const auto s0 = std::chrono::steady_clock::now();
    const auto sched = make_scheduler(policy, trace.g(), params);
    // Merge the shard's arrivals with its retractions in the canonical
    // stream order (the same rule EventStream applies).
    std::size_t a = shards[s].begin;
    std::size_t c = shards[s].cancel_begin;
    while (a < shards[s].end || c < shards[s].cancel_end) {
      const bool take_cancel =
          c < shards[s].cancel_end &&
          (a >= shards[s].end ||
           retraction_precedes_arrival(cancels[c].at,
                                       trace.job(order[a]).start()));
      if (take_cancel) {
        const CancelRecord& record = cancels[c++];
        const std::size_t pos =
            pos_by_id[static_cast<std::size_t>(record.job)];
        sched->on_cancel(static_cast<JobId>(pos - shards[s].begin),
                         trace.job(record.job), record.at, record.preempt);
      } else {
        sched->on_arrival(static_cast<JobId>(a - shards[s].begin),
                          trace.job(order[a]));
        ++a;
      }
    }
    if (s + 1 < shards.size()) {
      // Finalize exactly as the sequential stream does around the next
      // shard's first arrival: advance (closing machines gone idle), flush
      // the pending epoch batch the way that arrival's handle() would, then
      // advance once more — the batch machines are placed entirely in the
      // past, so the following arrival closes them immediately.
      const Time next_start = trace.job(order[shards[s + 1].begin]).start();
      sched->advance_clock(next_start);
      sched->flush();
      sched->advance_clock(std::numeric_limits<Time>::max());
    } else {
      sched->flush();
    }
    runs[s].part = sched->schedule();
    runs[s].stats = sched->stats();
    const auto s1 = std::chrono::steady_clock::now();
    const std::size_t arrivals = shards[s].end - shards[s].begin;
    shard_jobs_hist.record(arrivals);
    shard_us_hist.record(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(s1 - s0)
            .count()));
    if (spans != nullptr)
      spans->add("shard", replay_span.id(), s0, s1,
                 static_cast<std::int64_t>(arrivals));
  });

  const obs::ScopedSpan merge_span(spans, "replay_merge", replay_span.id());
  // Stitch in shard order.  Shards are time-disjoint and a sequential pool
  // never reuses a closed machine's id, so offsetting each shard's machine
  // ids by the openings before it reproduces the sequential numbering;
  // counters add, peaks max (only one shard is ever active at a time), and
  // the final clock / open set are the last shard's.
  EngineStats merged;
  MachineId base = 0;
  for (std::size_t s = 0; s < shards.size(); ++s) {
    const ShardRun& run = runs[s];
    const std::size_t count = shards[s].end - shards[s].begin;
    for (std::size_t j = 0; j < count; ++j) {
      const MachineId m = j < run.part.size()
                              ? run.part.machine_of(static_cast<JobId>(j))
                              : Schedule::kUnscheduled;
      if (m == Schedule::kUnscheduled) continue;
      result.schedule.assign(order[shards[s].begin + j], base + m);
    }
    base += static_cast<MachineId>(run.stats.machines_opened);
    merged.jobs_assigned += run.stats.jobs_assigned;
    merged.machines_opened += run.stats.machines_opened;
    merged.machines_closed += run.stats.machines_closed;
    merged.open_machines += run.stats.open_machines;
    merged.active_jobs += run.stats.active_jobs;
    merged.peak_open_machines =
        std::max(merged.peak_open_machines, run.stats.peak_open_machines);
    merged.peak_active_jobs =
        std::max(merged.peak_active_jobs, run.stats.peak_active_jobs);
    merged.jobs_cancelled += run.stats.jobs_cancelled;
    merged.jobs_preempted += run.stats.jobs_preempted;
    merged.cancels_ignored += run.stats.cancels_ignored;
    merged.busy_time_refunded += run.stats.busy_time_refunded;
    merged.online_cost += run.stats.online_cost;
  }
  // Slot recycling is a per-pool storage effect: a sequential pool recycles
  // across shard boundaries where per-shard pools start fresh, so the count
  // is reconstructed from its invariant (a fresh slot is allocated exactly
  // when the open count tops its previous high water) rather than summed.
  merged.slots_recycled = merged.machines_opened - merged.peak_open_machines;
  merged.clock = runs.back().stats.clock;
  result.stats = merged;
  return result;
}

StreamReport run_events(const Instance& trace,
                        const std::vector<CancelRecord>& cancels,
                        const Instance& residual, OnlinePolicy policy,
                        const StreamOptions& options) {
  StreamReport report;
  report.policy = policy;
  report.jobs = trace.size();
  report.cancels = cancels.size();

  // Warm the memoized arrival order outside the timed region (the
  // sequential driver's JobStream constructor historically sorted before
  // the clock started).
  if (!trace.empty()) trace.ids_by_start();

  const auto t0 = std::chrono::steady_clock::now();
  ReplayResult replay =
      replay_events(trace, cancels, policy, options.policy, options.threads,
                    options.min_shard_jobs, nullptr);
  const auto t1 = std::chrono::steady_clock::now();

  report.stats = replay.stats;
  report.online_cost = report.stats.online_cost;
  report.threads = replay.threads;
  report.shards = replay.shards;
  report.elapsed_sec = std::chrono::duration<double>(t1 - t0).count();
  report.jobs_per_sec = report.elapsed_sec > 0
                            ? static_cast<double>(report.jobs) / report.elapsed_sec
                            : 0;
  report.ratio_to_lb = ratio_to_lower_bound(residual, report.online_cost);
  if (options.validate) report.valid = is_valid(residual, replay.schedule);

  // Offline comparison on a prefix of the same stream, against the residual
  // workload (what actually ran).
  const std::size_t k = std::min(options.offline_prefix, trace.size());
  if (k > 0) {
    std::vector<JobId> prefix_order = trace.ids_by_start();
    prefix_order.resize(k);
    report.prefix_jobs = k;
    if (k == trace.size()) {
      // A full-trace prefix needs no second replay: its online cost is the
      // one just measured.
      report.prefix_online_cost = report.online_cost;
      report.prefix_offline_cost =
          solve_minbusy_auto(residual).schedule.cost(residual);
    } else {
      const Instance prefix = trace.restricted_to(prefix_order);
      // Renumber the prefix's retractions: restricted_to assigns new id k to
      // the job at position k of the start order.
      std::vector<std::size_t> pos_by_id(trace.size(),
                                         std::numeric_limits<std::size_t>::max());
      const auto& order = trace.ids_by_start();
      for (std::size_t p = 0; p < k; ++p)
        pos_by_id[static_cast<std::size_t>(order[p])] = p;
      std::vector<CancelRecord> prefix_cancels;
      for (const CancelRecord& record : cancels) {
        const std::size_t pos = pos_by_id[static_cast<std::size_t>(record.job)];
        if (pos >= k) continue;
        prefix_cancels.push_back({static_cast<JobId>(pos), record.at, record.preempt});
      }
      const EventTrace prefix_trace(prefix, std::move(prefix_cancels));
      report.prefix_online_cost =
          replay_stream(prefix_trace, policy, options.policy, 1).stats.online_cost;
      const Instance prefix_residual = prefix_trace.residual();
      report.prefix_offline_cost =
          solve_minbusy_auto(prefix_residual).schedule.cost(prefix_residual);
    }
    if (report.prefix_offline_cost > 0) {
      report.competitive_ratio =
          static_cast<double>(report.prefix_online_cost) /
          static_cast<double>(report.prefix_offline_cost);
    }
  }
  return report;
}

}  // namespace

ReplayResult replay_stream(const Instance& trace, OnlinePolicy policy,
                           const PolicyParams& params, int threads,
                           std::size_t min_shard_jobs,
                           const RequestContext* context) {
  return replay_events(trace, {}, policy, params, threads, min_shard_jobs,
                       context);
}

ReplayResult replay_stream(const EventTrace& trace, OnlinePolicy policy,
                           const PolicyParams& params, int threads,
                           std::size_t min_shard_jobs,
                           const RequestContext* context) {
  return replay_events(trace.base(), trace.cancels(), policy, params, threads,
                       min_shard_jobs, context);
}

StreamReport run_stream(const Instance& trace, OnlinePolicy policy,
                        const StreamOptions& options) {
  return run_events(trace, {}, trace, policy, options);
}

StreamReport run_stream(const EventTrace& trace, OnlinePolicy policy,
                        const StreamOptions& options) {
  return run_events(trace.base(), trace.cancels(), trace.residual(), policy,
                    options);
}

std::string StreamReport::summary() const {
  std::ostringstream oss;
  oss << to_string(policy) << ": jobs=" << jobs;
  if (cancels > 0) oss << " cancels=" << cancels;
  oss << " cost=" << online_cost
      << " jobs/sec=" << static_cast<std::int64_t>(jobs_per_sec)
      << " ratio_to_lb=" << ratio_to_lb;
  if (stats.busy_time_refunded > 0)
    oss << " refunded=" << stats.busy_time_refunded;
  if (threads > 1) oss << " threads=" << threads << " shards=" << shards;
  if (prefix_offline_cost > 0)
    oss << " competitive_ratio@" << prefix_jobs << "=" << competitive_ratio;
  if (!valid) oss << " INVALID";
  return oss.str();
}

}  // namespace busytime

#include "online/stream_driver.hpp"

#include <algorithm>
#include <chrono>
#include <sstream>

#include "algo/dispatch.hpp"
#include "core/bounds.hpp"
#include "core/validate.hpp"
#include "online/event.hpp"

namespace busytime {

namespace {

/// Online cost of running `policy` over `inst` (jobs fed in start order).
Time replay_cost(const Instance& inst, OnlinePolicy policy,
                 const PolicyParams& params) {
  auto sched = make_scheduler(policy, inst.g(), params);
  JobStream stream(inst);
  while (!stream.done()) {
    const ArrivalEvent ev = stream.next();
    sched->on_arrival(ev.id, ev.job);
  }
  sched->flush();
  return sched->stats().online_cost;
}

}  // namespace

StreamReport run_stream(const Instance& trace, OnlinePolicy policy,
                        const StreamOptions& options) {
  StreamReport report;
  report.policy = policy;
  report.jobs = trace.size();

  auto sched = make_scheduler(policy, trace.g(), options.policy);
  JobStream stream(trace);

  const auto t0 = std::chrono::steady_clock::now();
  while (!stream.done()) {
    const ArrivalEvent ev = stream.next();
    sched->on_arrival(ev.id, ev.job);
  }
  sched->flush();
  const auto t1 = std::chrono::steady_clock::now();

  report.stats = sched->stats();
  report.online_cost = report.stats.online_cost;
  report.elapsed_sec = std::chrono::duration<double>(t1 - t0).count();
  report.jobs_per_sec = report.elapsed_sec > 0
                            ? static_cast<double>(report.jobs) / report.elapsed_sec
                            : 0;
  report.ratio_to_lb = ratio_to_lower_bound(trace, report.online_cost);
  if (options.validate) report.valid = is_valid(trace, sched->schedule());

  // Offline comparison on a prefix of the same stream.
  const std::size_t k = std::min(options.offline_prefix, trace.size());
  if (k > 0) {
    std::vector<JobId> order = trace.ids_by_start();
    order.resize(k);
    const Instance prefix = trace.restricted_to(order);
    report.prefix_jobs = k;
    // A full-trace prefix needs no second replay: its online cost is the
    // one just measured.
    report.prefix_online_cost =
        k == trace.size() ? report.online_cost
                          : replay_cost(prefix, policy, options.policy);
    report.prefix_offline_cost =
        solve_minbusy_auto(prefix).schedule.cost(prefix);
    if (report.prefix_offline_cost > 0) {
      report.competitive_ratio =
          static_cast<double>(report.prefix_online_cost) /
          static_cast<double>(report.prefix_offline_cost);
    }
  }
  return report;
}

std::string StreamReport::summary() const {
  std::ostringstream oss;
  oss << to_string(policy) << ": jobs=" << jobs << " cost=" << online_cost
      << " jobs/sec=" << static_cast<std::int64_t>(jobs_per_sec)
      << " ratio_to_lb=" << ratio_to_lb;
  if (prefix_offline_cost > 0)
    oss << " competitive_ratio@" << prefix_jobs << "=" << competitive_ratio;
  if (!valid) oss << " INVALID";
  return oss.str();
}

}  // namespace busytime

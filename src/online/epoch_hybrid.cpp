#include "online/epoch_hybrid.hpp"

#include <cassert>
#include <utility>

#include "algo/dispatch.hpp"
#include "core/instance.hpp"

namespace busytime {

void EpochHybrid::handle(JobId id, const Job& job) {
  if (!pending_.empty() &&
      (job.start() - epoch_start_ >= params_.epoch_length ||
       static_cast<int>(pending_.size()) >= params_.max_batch)) {
    flush_batch();
  }
  if (pending_.empty()) epoch_start_ = job.start();
  pending_.push_back(ArrivalEvent{id, job});
}

void EpochHybrid::flush() {
  if (!pending_.empty()) flush_batch();
}

bool EpochHybrid::handle_cancel(JobId id, const Job& job, Time at, bool preempt) {
  for (ArrivalEvent& ev : pending_) {
    if (ev.id != id) continue;
    // The batch instance must keep positive lengths; the base class already
    // rejected at <= start, so the truncated run [start, at) is non-empty.
    ev.job.interval.completion = at;
    pool_.note_pending_cancel(preempt);
    return true;
  }
  return OnlineScheduler::handle_cancel(id, job, at, preempt);
}

void EpochHybrid::flush_batch() {
  // Re-optimize the batch with the offline dispatcher.  Batch jobs are
  // renumbered 0..k-1 in arrival order; groups come back as machine ids of
  // the batch schedule.
  std::vector<Job> jobs;
  jobs.reserve(pending_.size());
  for (const ArrivalEvent& ev : pending_) jobs.push_back(ev.job);
  const Instance batch(std::move(jobs), g());
  // Sequential dispatch: batches are small (<= max_batch) and latency-bound,
  // so a pool fan-out per epoch would cost more than it saves — and a
  // threads=1 stream replay must stay an exact sequential path.  Sharded
  // replay parallelizes across shards instead.
  const DispatchResult offline = solve_minbusy_auto(batch, /*threads=*/1);

  // Materialize each offline group onto a fresh pinned machine, then replay
  // the batch in start order so the pool's incremental busy accounting sees
  // monotone placements.  Pinning keeps a group's machine open across the
  // idle gaps an offline group may contain.
  std::vector<MachineId> group_machine(
      static_cast<std::size_t>(offline.schedule.machine_count()),
      Schedule::kUnscheduled);
  for (std::size_t k = 0; k < pending_.size(); ++k) {
    const MachineId local = offline.schedule.machine_of(static_cast<JobId>(k));
    assert(local != Schedule::kUnscheduled);  // MinBusy schedules are full
    auto& target = group_machine[static_cast<std::size_t>(local)];
    if (target == Schedule::kUnscheduled) target = pool_.open_machine(/*pinned=*/true);
    commit(pending_[k].id, target, pending_[k].job);
  }
  pool_.unpin_all();
  pending_.clear();
}

}  // namespace busytime

// StreamDriver: replays a workload trace through an online policy and
// measures serving performance.
//
// The driver is the bridge between the offline reproduction and the serving
// system: it times the assignment hot path (jobs/sec), validates the
// resulting schedule, and quantifies the price of being online in two ways:
//
//  * ratio_to_lb      — online cost over the Observation 2.1 lower bound of
//                       the full trace (cheap at any scale);
//  * competitive_ratio — online cost over the offline dispatcher's cost on a
//                       bounded prefix of the same stream (the empirical
//                       competitive ratio; the offline solve is super-linear,
//                       so the prefix keeps million-job runs tractable).
#pragma once

#include <cstddef>
#include <string>

#include "core/instance.hpp"
#include "online/scheduler.hpp"

namespace busytime {

struct StreamOptions {
  PolicyParams policy;
  /// Jobs of the stream prefix used for the offline comparison; 0 disables
  /// the offline solve (competitive_ratio reported as 0).
  std::size_t offline_prefix = 10000;
  /// Re-check the final schedule with core/validate (O(n log n)).
  bool validate = true;
};

struct StreamReport {
  OnlinePolicy policy = OnlinePolicy::kFirstFit;
  std::size_t jobs = 0;
  Time online_cost = 0;
  EngineStats stats;
  bool valid = true;

  double elapsed_sec = 0;    ///< wall time of the replay loop only
  double jobs_per_sec = 0;

  std::size_t prefix_jobs = 0;
  Time prefix_online_cost = 0;
  Time prefix_offline_cost = 0;
  double competitive_ratio = 0;  ///< prefix online / prefix offline cost
  double ratio_to_lb = 0;        ///< full-trace online cost / lower bound

  std::string summary() const;
};

/// Replays `trace` (jobs in start order) through `policy` and reports.
StreamReport run_stream(const Instance& trace, OnlinePolicy policy,
                        const StreamOptions& options = {});

}  // namespace busytime

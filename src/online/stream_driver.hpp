// StreamDriver: replays a workload trace through an online policy and
// measures serving performance.
//
// The driver is the bridge between the offline reproduction and the serving
// system: it times the assignment hot path (jobs/sec), validates the
// resulting schedule, and quantifies the price of being online in two ways:
//
//  * ratio_to_lb      — online cost over the Observation 2.1 lower bound of
//                       the full trace (cheap at any scale);
//  * competitive_ratio — online cost over the offline dispatcher's cost on a
//                       bounded prefix of the same stream (the empirical
//                       competitive ratio; the offline solve is super-linear,
//                       so the prefix keeps million-job runs tractable).
//
// Traces may carry cancellation/preemption records (EventTrace): the replay
// feeds the merged event stream to the policy, and every comparison — lower
// bound, validation, offline prefix — is made against the *residual*
// instance (retracted jobs truncated), the workload that actually ran.
//
// Sharded replay: interval-graph components are totally ordered in time (the
// sweep starts a new component exactly when an arrival misses the running
// frontier), so the arrival stream splits at component boundaries into
// time-disjoint shards that replay concurrently, one MachinePool per shard.
// Cancellations shard with their component: an effective record's time lies
// strictly inside its job's interval, hence strictly before any later
// component boundary, so each shard replays its own retractions in stream
// order.  Stitched in shard order, the result — assignments, cost,
// EngineStats — is identical to the sequential replay at every thread
// count; for the epoch-hybrid policy, shard cuts are restricted to
// boundaries whose idle gap is at least the epoch length (where the
// sequential run provably flushes its batch), which preserves the
// equivalence.
#pragma once

#include <cstddef>
#include <string>

#include "core/instance.hpp"
#include "online/event.hpp"
#include "online/scheduler.hpp"

namespace busytime {

struct RequestContext;

struct StreamOptions {
  PolicyParams policy;
  /// Jobs of the stream prefix used for the offline comparison; 0 disables
  /// the offline solve (competitive_ratio reported as 0).
  std::size_t offline_prefix = 10000;
  /// Re-check the final schedule with core/validate (O(n log n)).
  bool validate = true;
  /// Worker threads for the sharded replay: 1 = exact sequential replay
  /// through a single pool, 0 = the exec process default.  Thread count
  /// never changes the resulting schedule, cost, or stats.
  int threads = 1;
  /// Lower bound on jobs per shard, keeping per-shard overhead amortized.
  std::size_t min_shard_jobs = 4096;
};

struct StreamReport {
  OnlinePolicy policy = OnlinePolicy::kFirstFit;
  std::size_t jobs = 0;
  std::size_t cancels = 0;   ///< retraction records replayed
  Time online_cost = 0;
  EngineStats stats;
  bool valid = true;

  int threads = 1;           ///< effective worker count of the replay
  std::size_t shards = 1;    ///< shards the stream was partitioned into

  double elapsed_sec = 0;    ///< wall time of the replay (fan-out + stitch)
  double jobs_per_sec = 0;

  std::size_t prefix_jobs = 0;
  Time prefix_online_cost = 0;
  Time prefix_offline_cost = 0;
  double competitive_ratio = 0;  ///< prefix online / prefix offline cost
  double ratio_to_lb = 0;        ///< full-trace online cost / lower bound

  std::string summary() const;
};

/// Low-level sharded replay result: the schedule and merged stats without
/// the report scaffolding (validation, ratios, offline comparison).
struct ReplayResult {
  Schedule schedule;
  EngineStats stats;
  int threads = 1;
  std::size_t shards = 0;
};

/// Replays `trace` (jobs in start order) through `policy` on up to
/// `threads` workers (0 = process default, 1 = sequential single pool).
/// Deterministic: identical output at every thread count.
///
/// `context` is the observability/controls hook: replay counters and
/// per-shard histograms are recorded into its metrics sink (the
/// process-default registry when null) and shard spans into its trace.
ReplayResult replay_stream(const Instance& trace, OnlinePolicy policy,
                           const PolicyParams& params, int threads = 1,
                           std::size_t min_shard_jobs = 4096,
                           const RequestContext* context = nullptr);

/// Replays an event trace — arrivals interleaved with cancellations and
/// preemptions in time order (retractions first at equal times).  Same
/// determinism contract: schedule, cost, and stats are bit-identical at
/// every thread count, and the final online_cost equals
/// schedule.cost(trace.residual()).
ReplayResult replay_stream(const EventTrace& trace, OnlinePolicy policy,
                           const PolicyParams& params, int threads = 1,
                           std::size_t min_shard_jobs = 4096,
                           const RequestContext* context = nullptr);

/// Replays `trace` (jobs in start order) through `policy` and reports.
StreamReport run_stream(const Instance& trace, OnlinePolicy policy,
                        const StreamOptions& options = {});

/// Replays an event trace through `policy` and reports against the residual
/// instance (lower bound, validation, offline prefix comparison).
StreamReport run_stream(const EventTrace& trace, OnlinePolicy policy,
                        const StreamOptions& options = {});

}  // namespace busytime

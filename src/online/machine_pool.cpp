#include "online/machine_pool.hpp"

#include <algorithm>
#include <cassert>
#include <functional>
#include <limits>

#include "util/check.hpp"

namespace busytime {

namespace {
/// next_completion_ sentinel for "no job running": compares greater than any
/// real clock, so the advance scan needs no emptiness branch.
constexpr Time kIdle = std::numeric_limits<Time>::max();
}  // namespace

MachinePool::MachinePool(int g) : g_(g) { assert(g >= 1); }

void MachinePool::advance(Time now) {
  assert(now >= stats_.clock || stats_.clock == std::numeric_limits<Time>::lowest());
  stats_.clock = now;

  std::size_t keep = 0;
  for (std::size_t i = 0; i < open_.size(); ++i) {
    const MachineId id = open_[i];
    const auto slot = static_cast<std::size_t>(slot_index(id));
    // Hot path: one flat load per open machine.  The cached heap minimum
    // tells us whether anything retires at this instant without touching
    // the heap storage at all.
    if (next_completion_[slot] <= now) {
      auto& active = slots_[slot].active;
      // Retire jobs whose half-open interval has ended: [s, c) is no longer
      // running at time c, so completions <= now free a slot.
      while (!active.empty() && active.front() <= now) {
        std::pop_heap(active.begin(), active.end(), std::greater<Time>());
        active.pop_back();
        --stats_.active_jobs;
      }
      active_count_[slot] = static_cast<std::int32_t>(active.size());
      next_completion_[slot] = active.empty() ? kIdle : active.front();
    }
    if (active_count_[slot] == 0 && slot_has_jobs_[slot] != 0 &&
        slot_pinned_[slot] == 0) {
      ++stats_.machines_closed;
      --stats_.open_machines;
      // Closed machines are never revisited; return the slot (heap storage
      // included) to the free list so the next opening reuses it — memory
      // stays proportional to the peak concurrent load, not the history.
      free_slots_.push_back(static_cast<std::int32_t>(slot));
      slot_of_[static_cast<std::size_t>(id)] = kNoSlot;
      continue;  // drop from the open set
    }
    open_[keep++] = id;
  }
  open_.resize(keep);
  // Recycle identity: every opening beyond the concurrent peak reused a slot.
  BUSYTIME_CHECK(stats_.open_machines == static_cast<std::int64_t>(open_.size()),
                 "open-machine counter diverged from the open set");
  BUSYTIME_CHECK(stats_.slots_recycled ==
                     stats_.machines_opened - stats_.peak_open_machines,
                 "slot recycling broke machines_opened - peak_open_machines");
}

bool MachinePool::fits(MachineId m) const {
  return active_count_[static_cast<std::size_t>(slot_index(m))] < g_;
}

Time MachinePool::extension(MachineId m, const Interval& iv) const {
  const auto slot = static_cast<std::size_t>(slot_index(m));
  if (slot_has_jobs_[slot] == 0) return iv.length();
  const Time seg_end = seg_end_[slot];
  if (iv.start >= seg_end) return iv.length();  // idle gap: new segment
  return std::max<Time>(0, iv.completion - seg_end);
}

MachineId MachinePool::open_machine(bool pinned) {
  const auto id = static_cast<MachineId>(slot_of_.size());
  std::int32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
    BUSYTIME_CHECK(slots_[static_cast<std::size_t>(slot)].active.empty(),
                   "recycled a machine slot that still has running jobs");
    // only idle machines close, so the heap is empty and the hot scalars
    // just reset in place
    ++stats_.slots_recycled;
  } else {
    slot = static_cast<std::int32_t>(slots_.size());
    slots_.emplace_back();
    next_completion_.push_back(kIdle);
    seg_end_.push_back(0);
    active_count_.push_back(0);
    slot_has_jobs_.push_back(0);
    slot_pinned_.push_back(0);
  }
  const auto s = static_cast<std::size_t>(slot);
  next_completion_[s] = kIdle;
  seg_end_[s] = 0;
  active_count_[s] = 0;
  slot_has_jobs_[s] = 0;
  slot_pinned_[s] = pinned ? 1 : 0;
  slot_of_.push_back(slot);
  open_.push_back(id);
  if (pinned) pinned_.push_back(id);
  ++stats_.machines_opened;
  ++stats_.open_machines;
  stats_.peak_open_machines =
      std::max(stats_.peak_open_machines, stats_.open_machines);
  return id;
}

void MachinePool::place(MachineId m, const Interval& iv) {
  assert(iv.start <= stats_.clock);
  const auto slot = static_cast<std::size_t>(slot_index(m));

  stats_.online_cost += extension(m, iv);
  if (slot_has_jobs_[slot] == 0 || iv.start >= seg_end_[slot]) {
    seg_end_[slot] = iv.completion;  // first job or post-gap segment
  } else {
    seg_end_[slot] = std::max(seg_end_[slot], iv.completion);
  }
  slot_has_jobs_[slot] = 1;
  ++stats_.jobs_assigned;

  // Only jobs still running at the stream clock occupy a capacity slot.
  // Batch replay places jobs at past instants, where a job may already have
  // completed — counting it as active would inflate the load counters and
  // could over-fill the heap when a group legally chains more than g
  // non-overlapping jobs through the same slots.
  if (iv.completion > stats_.clock) {
    auto& active = slots_[slot].active;
    BUSYTIME_CHECK(active.size() < static_cast<std::size_t>(g_),
                   "placement would exceed the machine's capacity g");
    active.push_back(iv.completion);
    std::push_heap(active.begin(), active.end(), std::greater<Time>());
    active_count_[slot] = static_cast<std::int32_t>(active.size());
    next_completion_[slot] = active.front();
    ++stats_.active_jobs;
    stats_.peak_active_jobs = std::max(stats_.peak_active_jobs, stats_.active_jobs);
  }
}

std::optional<Time> MachinePool::truncate(MachineId m, Time completion,
                                          bool preempt) {
  const Time now = stats_.clock;
  const auto slot = static_cast<std::size_t>(slot_index(m));
  auto& active = slots_[slot].active;

  const auto it = std::find(active.begin(), active.end(), completion);
  if (it == active.end()) return std::nullopt;  // nothing is running
  active.erase(it);
  std::make_heap(active.begin(), active.end(), std::greater<Time>());
  active_count_[slot] = static_cast<std::int32_t>(active.size());
  next_completion_[slot] = active.empty() ? kIdle : active.front();
  --stats_.active_jobs;

  // Every remaining running job spans the cancel instant (it started at or
  // before now and completes after), so the machine's busy tail beyond now
  // is exactly [now, max remaining completion) — and the old tail reached
  // seg_end.  The difference is the busy time nobody covers any more.
  Time covered = now;
  for (const Time c : active) covered = std::max(covered, c);
  const Time refund = seg_end_[slot] - covered;
  // Refund identity: the uncovered busy tail is exactly what the cancelled
  // job alone was paying for — it can never be negative and never reach
  // past the cancel instant.
  BUSYTIME_CHECK(refund >= 0, "truncate would refund busy time nobody paid");
  BUSYTIME_CHECK(stats_.active_jobs >= 0,
                 "truncate drove the running-job counter negative");
  seg_end_[slot] = covered;

  stats_.online_cost -= refund;
  stats_.busy_time_refunded += refund;
  ++(preempt ? stats_.jobs_preempted : stats_.jobs_cancelled);
  return refund;
}

void MachinePool::unpin_all() {
  for (const MachineId id : pinned_)
    slot_pinned_[static_cast<std::size_t>(slot_index(id))] = 0;
  pinned_.clear();
}

}  // namespace busytime

#include "online/machine_pool.hpp"

#include <algorithm>
#include <cassert>
#include <functional>

namespace busytime {

MachinePool::MachinePool(int g) : g_(g) { assert(g >= 1); }

void MachinePool::advance(Time now) {
  assert(now >= stats_.clock || stats_.clock == std::numeric_limits<Time>::lowest());
  stats_.clock = now;

  std::size_t keep = 0;
  for (std::size_t i = 0; i < open_.size(); ++i) {
    const MachineId id = open_[i];
    Machine& m = machines_[static_cast<std::size_t>(id)];
    // Retire jobs whose half-open interval has ended: [s, c) is no longer
    // running at time c, so completions <= now free a slot.
    while (!m.active.empty() && m.active.front() <= now) {
      std::pop_heap(m.active.begin(), m.active.end(), std::greater<Time>());
      m.active.pop_back();
      --stats_.active_jobs;
    }
    if (m.active.empty() && m.has_jobs && !m.pinned) {
      ++stats_.machines_closed;
      --stats_.open_machines;
      // Closed machines are never revisited; release the heap storage so
      // long-lived streams hold memory proportional to current load, not to
      // the total number of machines ever opened.
      std::vector<Time>().swap(m.active);
      continue;  // drop from the open set
    }
    open_[keep++] = id;
  }
  open_.resize(keep);
}

bool MachinePool::fits(MachineId m) const {
  return machines_[static_cast<std::size_t>(m)].active.size() <
         static_cast<std::size_t>(g_);
}

Time MachinePool::extension(MachineId m, const Interval& iv) const {
  const Machine& machine = machines_[static_cast<std::size_t>(m)];
  if (!machine.has_jobs) return iv.length();
  if (iv.start >= machine.seg_end) return iv.length();  // idle gap: new segment
  return std::max<Time>(0, iv.completion - machine.seg_end);
}

MachineId MachinePool::open_machine(bool pinned) {
  const auto id = static_cast<MachineId>(machines_.size());
  machines_.emplace_back();
  machines_.back().pinned = pinned;
  open_.push_back(id);
  if (pinned) pinned_.push_back(id);
  ++stats_.machines_opened;
  ++stats_.open_machines;
  stats_.peak_open_machines =
      std::max(stats_.peak_open_machines, stats_.open_machines);
  return id;
}

void MachinePool::place(MachineId m, const Interval& iv) {
  assert(iv.start <= stats_.clock);
  Machine& machine = machines_[static_cast<std::size_t>(m)];

  stats_.online_cost += extension(m, iv);
  if (!machine.has_jobs || iv.start >= machine.seg_end) {
    machine.seg_end = iv.completion;  // first job or post-gap segment
  } else {
    machine.seg_end = std::max(machine.seg_end, iv.completion);
  }
  machine.has_jobs = true;
  ++stats_.jobs_assigned;

  // Only jobs still running at the stream clock occupy a capacity slot.
  // Batch replay places jobs at past instants, where a job may already have
  // completed — counting it as active would inflate the load counters and
  // could over-fill the heap when a group legally chains more than g
  // non-overlapping jobs through the same slots.
  if (iv.completion > stats_.clock) {
    assert(machine.active.size() < static_cast<std::size_t>(g_));
    machine.active.push_back(iv.completion);
    std::push_heap(machine.active.begin(), machine.active.end(), std::greater<Time>());
    ++stats_.active_jobs;
    stats_.peak_active_jobs = std::max(stats_.peak_active_jobs, stats_.active_jobs);
  }
}

void MachinePool::unpin_all() {
  for (const MachineId id : pinned_)
    machines_[static_cast<std::size_t>(id)].pinned = false;
  pinned_.clear();
}

}  // namespace busytime

#include "online/machine_pool.hpp"

#include <algorithm>
#include <cassert>
#include <functional>

namespace busytime {

MachinePool::MachinePool(int g) : g_(g) { assert(g >= 1); }

MachinePool::Machine& MachinePool::machine(MachineId id) {
  const std::int32_t slot = slot_of_[static_cast<std::size_t>(id)];
  assert(slot != kNoSlot);
  return slots_[static_cast<std::size_t>(slot)];
}

const MachinePool::Machine& MachinePool::machine(MachineId id) const {
  const std::int32_t slot = slot_of_[static_cast<std::size_t>(id)];
  assert(slot != kNoSlot);
  return slots_[static_cast<std::size_t>(slot)];
}

void MachinePool::advance(Time now) {
  assert(now >= stats_.clock || stats_.clock == std::numeric_limits<Time>::lowest());
  stats_.clock = now;

  std::size_t keep = 0;
  for (std::size_t i = 0; i < open_.size(); ++i) {
    const MachineId id = open_[i];
    Machine& m = machine(id);
    // Retire jobs whose half-open interval has ended: [s, c) is no longer
    // running at time c, so completions <= now free a slot.
    while (!m.active.empty() && m.active.front() <= now) {
      std::pop_heap(m.active.begin(), m.active.end(), std::greater<Time>());
      m.active.pop_back();
      --stats_.active_jobs;
    }
    if (m.active.empty() && m.has_jobs && !m.pinned) {
      ++stats_.machines_closed;
      --stats_.open_machines;
      // Closed machines are never revisited; return the slot (heap storage
      // included) to the free list so the next opening reuses it — memory
      // stays proportional to the peak concurrent load, not the history.
      free_slots_.push_back(slot_of_[static_cast<std::size_t>(id)]);
      slot_of_[static_cast<std::size_t>(id)] = kNoSlot;
      continue;  // drop from the open set
    }
    open_[keep++] = id;
  }
  open_.resize(keep);
}

bool MachinePool::fits(MachineId m) const {
  return machine(m).active.size() < static_cast<std::size_t>(g_);
}

Time MachinePool::extension(MachineId m, const Interval& iv) const {
  const Machine& mach = machine(m);
  if (!mach.has_jobs) return iv.length();
  if (iv.start >= mach.seg_end) return iv.length();  // idle gap: new segment
  return std::max<Time>(0, iv.completion - mach.seg_end);
}

MachineId MachinePool::open_machine(bool pinned) {
  const auto id = static_cast<MachineId>(slot_of_.size());
  std::int32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
    Machine& reused = slots_[static_cast<std::size_t>(slot)];
    assert(reused.active.empty());  // only idle machines close
    reused.seg_end = 0;
    reused.has_jobs = false;
    ++stats_.slots_recycled;
  } else {
    slot = static_cast<std::int32_t>(slots_.size());
    slots_.emplace_back();
  }
  slot_of_.push_back(slot);
  slots_[static_cast<std::size_t>(slot)].pinned = pinned;
  open_.push_back(id);
  if (pinned) pinned_.push_back(id);
  ++stats_.machines_opened;
  ++stats_.open_machines;
  stats_.peak_open_machines =
      std::max(stats_.peak_open_machines, stats_.open_machines);
  return id;
}

void MachinePool::place(MachineId m, const Interval& iv) {
  assert(iv.start <= stats_.clock);
  Machine& mach = machine(m);

  stats_.online_cost += extension(m, iv);
  if (!mach.has_jobs || iv.start >= mach.seg_end) {
    mach.seg_end = iv.completion;  // first job or post-gap segment
  } else {
    mach.seg_end = std::max(mach.seg_end, iv.completion);
  }
  mach.has_jobs = true;
  ++stats_.jobs_assigned;

  // Only jobs still running at the stream clock occupy a capacity slot.
  // Batch replay places jobs at past instants, where a job may already have
  // completed — counting it as active would inflate the load counters and
  // could over-fill the heap when a group legally chains more than g
  // non-overlapping jobs through the same slots.
  if (iv.completion > stats_.clock) {
    assert(mach.active.size() < static_cast<std::size_t>(g_));
    mach.active.push_back(iv.completion);
    std::push_heap(mach.active.begin(), mach.active.end(), std::greater<Time>());
    ++stats_.active_jobs;
    stats_.peak_active_jobs = std::max(stats_.peak_active_jobs, stats_.active_jobs);
  }
}

std::optional<Time> MachinePool::truncate(MachineId m, Time completion,
                                          bool preempt) {
  const Time now = stats_.clock;
  Machine& mach = machine(m);

  const auto it = std::find(mach.active.begin(), mach.active.end(), completion);
  if (it == mach.active.end()) return std::nullopt;  // nothing is running
  mach.active.erase(it);
  std::make_heap(mach.active.begin(), mach.active.end(), std::greater<Time>());
  --stats_.active_jobs;

  // Every remaining running job spans the cancel instant (it started at or
  // before now and completes after), so the machine's busy tail beyond now
  // is exactly [now, max remaining completion) — and the old tail reached
  // seg_end.  The difference is the busy time nobody covers any more.
  Time covered = now;
  for (const Time c : mach.active) covered = std::max(covered, c);
  const Time refund = mach.seg_end - covered;
  assert(refund >= 0);
  mach.seg_end = covered;

  stats_.online_cost -= refund;
  stats_.busy_time_refunded += refund;
  ++(preempt ? stats_.jobs_preempted : stats_.jobs_cancelled);
  return refund;
}

void MachinePool::unpin_all() {
  for (const MachineId id : pinned_) machine(id).pinned = false;
  pinned_.clear();
}

}  // namespace busytime

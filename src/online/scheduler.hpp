// OnlineScheduler interface and the greedy online policies.
//
// An OnlineScheduler consumes a time-ordered event stream — arrivals plus
// cancellations/preemptions — and commits each job to a machine; the
// resulting Schedule is index-compatible with the originating Instance, so
// offline cost accounting, validation and the Observation 2.1 bounds all
// apply unchanged (against the residual instance when jobs were retracted).
//
// Policies:
//   first-fit     arrival-order FirstFit — the paper's 4-approximation
//                 baseline [13] run incrementally: lowest-id open machine
//                 with a free slot, else a fresh machine.
//   best-fit      minimal busy-interval extension among feasible open
//                 machines (reuse is never worse than opening: an open
//                 machine's busy segment always reaches past the arrival
//                 instant, so extension < length).
//   epoch-hybrid  delayed commitment (online/epoch_hybrid.hpp): batches
//                 arrivals into epochs and re-optimizes each batch with the
//                 offline dispatcher.
//
// All policies process retractions the same way once a job is placed: the
// machine's capacity slot frees at the cancel instant and the busy tail no
// remaining job covers is refunded (MachinePool::truncate).  The hybrid
// additionally truncates jobs still pending in its epoch batch before they
// are ever placed.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/schedule.hpp"
#include "online/engine_stats.hpp"
#include "online/event.hpp"
#include "online/machine_pool.hpp"

namespace busytime {

/// Which online policy to run (reporting + factory).
enum class OnlinePolicy { kFirstFit, kBestFit, kEpochHybrid };

std::string to_string(OnlinePolicy policy);

class OnlineScheduler {
 public:
  explicit OnlineScheduler(int g) : pool_(g), schedule_(0) {}
  virtual ~OnlineScheduler() = default;

  /// Feeds the next arrival.  Event times must be non-decreasing across
  /// on_arrival/on_cancel calls; out-of-order events throw
  /// std::invalid_argument.  `id` indexes the job in the originating
  /// instance (ids may arrive in any order as long as times are monotone).
  void on_arrival(JobId id, const Job& job);

  /// Feeds a cancellation (preempt = false) or preemption (preempt = true):
  /// job `id` — which previously arrived as `job` — stops at `at`, its
  /// remaining run is retracted, and the uncovered busy tail is refunded.
  /// Events outside the job's run (at <= start, at >= completion, or a
  /// second retraction) are counted as ignored.  `at` must be monotone with
  /// the other events.
  void on_cancel(JobId id, const Job& job, Time at, bool preempt = false);

  /// Feeds one merged stream event (arrival or retraction).
  void on_event(const StreamEvent& ev) {
    if (ev.kind == EventKind::kArrival) {
      on_arrival(ev.id, ev.job);
    } else {
      on_cancel(ev.id, ev.job, ev.time, ev.kind == EventKind::kPreempt);
    }
  }

  /// Commits any deferred jobs (no-op for the pure greedy policies).  Must
  /// be called once after the last event before reading the schedule.
  virtual void flush() {}

  /// Advances the pool clock without an arrival: retires completed jobs and
  /// closes idle machines, exactly as the next arrival's implicit advance
  /// would.  The sharded stream driver uses this to finalize a shard so its
  /// pool ends in the state the sequential stream's pool passes through at
  /// the next shard's first arrival.  `now` must be monotone.
  void advance_clock(Time now) { pool_.advance(now); }

  virtual std::string name() const = 0;

  const Schedule& schedule() const noexcept { return schedule_; }
  const EngineStats& stats() const noexcept { return pool_.stats(); }
  int g() const noexcept { return pool_.g(); }

 protected:
  /// Policy hook: decide (or defer) the machine for `job`.  The pool clock
  /// has already been advanced to job.start().
  virtual void handle(JobId id, const Job& job) = 0;

  /// Policy hook for an effective retraction (the pool clock is at `at`,
  /// which lies strictly inside the job's run, and the job has not been
  /// retracted before).  Returns true when the retraction took effect.  The
  /// base implementation truncates the placed job on its machine; policies
  /// that defer commitment override it to retract pending jobs first.
  virtual bool handle_cancel(JobId id, const Job& job, Time at, bool preempt);

  /// Places `job` on machine `m` and records the assignment.
  void commit(JobId id, MachineId m, const Job& job) {
    pool_.place(m, job.interval);
    schedule_.assign(id, m);
  }

  MachinePool pool_;
  Schedule schedule_;

 private:
  bool started_ = false;
  Time last_time_ = 0;
  /// Jobs already effectively retracted (second retractions are no-ops).
  std::vector<char> retracted_;
};

/// Online first-fit: first open machine with a free slot, in opening order.
class OnlineFirstFit final : public OnlineScheduler {
 public:
  using OnlineScheduler::OnlineScheduler;
  std::string name() const override { return to_string(OnlinePolicy::kFirstFit); }

 protected:
  void handle(JobId id, const Job& job) override;
};

/// Online best-fit: feasible open machine with the smallest busy-time
/// extension; ties break toward the lowest machine id.
class OnlineBestFit final : public OnlineScheduler {
 public:
  using OnlineScheduler::OnlineScheduler;
  std::string name() const override { return to_string(OnlinePolicy::kBestFit); }

 protected:
  void handle(JobId id, const Job& job) override;
};

/// Tuning knobs for policies that have any (currently the epoch hybrid).
struct PolicyParams {
  /// Epoch width of the hybrid: pending jobs are re-optimized offline
  /// whenever an arrival falls `epoch_length` past the epoch's first start.
  Time epoch_length = 1024;
  /// Hard cap on a batch, bounding the per-epoch offline solve.
  int max_batch = 4096;
};

std::unique_ptr<OnlineScheduler> make_scheduler(OnlinePolicy policy, int g,
                                                const PolicyParams& params = {});

}  // namespace busytime

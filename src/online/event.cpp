#include "online/event.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace busytime {

EventTrace::EventTrace(Instance base, std::vector<CancelRecord> cancels)
    : base_(std::move(base)) {
  for (const CancelRecord& record : cancels) {
    if (record.job < 0 ||
        static_cast<std::size_t>(record.job) >= base_.size()) {
      throw std::invalid_argument("cancel record names job " +
                                  std::to_string(record.job) + " but the trace has " +
                                  std::to_string(base_.size()) + " jobs");
    }
  }
  std::sort(cancels.begin(), cancels.end(),
            [](const CancelRecord& a, const CancelRecord& b) {
              return a.at != b.at ? a.at < b.at : a.job < b.job;
            });
  // Keep only records that will take effect: strictly mid-flight, first
  // retraction per job.  (at, job) order makes "first" well-defined; every
  // later record for the job targets an already-truncated run.
  std::vector<char> retracted(base_.size(), 0);
  cancels_.reserve(cancels.size());
  for (const CancelRecord& record : cancels) {
    const Job& job = base_.job(record.job);
    if (record.at <= job.start() || record.at >= job.completion() ||
        retracted[static_cast<std::size_t>(record.job)]) {
      ++dropped_;
      continue;
    }
    retracted[static_cast<std::size_t>(record.job)] = 1;
    cancels_.push_back(record);
  }
}

EventTrace::EventTrace(EventTrace&& other) noexcept
    : base_(std::move(other.base_)),
      cancels_(std::move(other.cancels_)),
      dropped_(other.dropped_),
      cache_(std::move(other.cache_)) {
  other.dropped_ = 0;
  other.cache_ = std::make_shared<ResidualCache>();
}

EventTrace& EventTrace::operator=(EventTrace&& other) noexcept {
  if (this != &other) {
    base_ = std::move(other.base_);
    cancels_ = std::move(other.cancels_);
    dropped_ = other.dropped_;
    cache_ = std::move(other.cache_);
    other.dropped_ = 0;
    other.cache_ = std::make_shared<ResidualCache>();
  }
  return *this;
}

const Instance& EventTrace::residual() const {
  if (cancels_.empty()) return base_;
  std::call_once(cache_->once, [this] {
    std::vector<Job> jobs = base_.jobs();
    // Canonical records are each job's unique effective retraction, so the
    // truncation is a direct assignment.
    for (const CancelRecord& record : cancels_)
      jobs[static_cast<std::size_t>(record.job)].interval.completion = record.at;
    cache_->residual = Instance(std::move(jobs), base_.g());
  });
  return cache_->residual;
}

}  // namespace busytime

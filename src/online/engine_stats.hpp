// Counters maintained by the streaming engine.
//
// The stats layer is what turns the engine from "an assignment loop" into a
// measurable serving system: every placement updates the accumulated busy
// time (the online analogue of cost(s), Section 2) incrementally, so the
// engine never recomputes a union of intervals, and open/close events plus
// peak load give capacity-planning signals that the offline solvers have no
// notion of.
#pragma once

#include <cstdint>
#include <limits>
#include <string>

#include "core/time_types.hpp"

namespace busytime {

struct EngineStats {
  std::int64_t jobs_assigned = 0;
  std::int64_t machines_opened = 0;
  std::int64_t machines_closed = 0;
  std::int64_t open_machines = 0;       ///< currently open (not yet idle)
  std::int64_t peak_open_machines = 0;
  std::int64_t active_jobs = 0;         ///< currently running across the pool
  std::int64_t peak_active_jobs = 0;    ///< peak concurrent load seen so far
  /// Latest stream time the engine has advanced to (lowest() before the
  /// first arrival).  Every placement happens at clock >= job start, which
  /// is the online "no assignment before arrival" invariant.
  Time clock = std::numeric_limits<Time>::lowest();
  /// Accumulated busy time of all machines — equals cost(s) of the engine's
  /// schedule at every point of the stream.
  Time online_cost = 0;

  std::string summary() const;
};

}  // namespace busytime

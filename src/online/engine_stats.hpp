// Counters maintained by the streaming engine.
//
// The stats layer is what turns the engine from "an assignment loop" into a
// measurable serving system: every placement updates the accumulated busy
// time (the online analogue of cost(s), Section 2) incrementally, so the
// engine never recomputes a union of intervals, and open/close events plus
// peak load give capacity-planning signals that the offline solvers have no
// notion of.  Cancellation events subtract from the same accumulator (the
// busy-time refund), so online_cost equals cost(s) of the engine's schedule
// against the *residual* instance at every point of the stream.
#pragma once

#include <cstdint>
#include <limits>
#include <string>

#include "core/time_types.hpp"

namespace busytime {

struct EngineStats {
  std::int64_t jobs_assigned = 0;
  std::int64_t machines_opened = 0;
  std::int64_t machines_closed = 0;
  std::int64_t open_machines = 0;       ///< currently open (not yet idle)
  std::int64_t peak_open_machines = 0;
  std::int64_t active_jobs = 0;         ///< currently running across the pool
  std::int64_t peak_active_jobs = 0;    ///< peak concurrent load seen so far
  /// Jobs truncated by an effective Cancel event (user retraction).
  std::int64_t jobs_cancelled = 0;
  /// Jobs truncated by an effective Preempt event (system-side stop).
  std::int64_t jobs_preempted = 0;
  /// Cancel/preempt events that had no effect: the job had already
  /// completed, had not run yet, or was cancelled twice.
  std::int64_t cancels_ignored = 0;
  /// Machine-pool slot reuses: machines opened into a slot previously freed
  /// by a closed machine (the id indirection keeps external MachineIds
  /// stable).  Invariant: machines_opened - peak_open_machines.
  std::int64_t slots_recycled = 0;
  /// Busy time returned by truncations of *placed* jobs: the part of each
  /// machine's busy tail no longer covered by any remaining job.  Pending
  /// (not yet placed) jobs truncated inside an epoch batch never charged
  /// their tail, so they refund nothing.
  Time busy_time_refunded = 0;
  /// Latest stream time the engine has advanced to (lowest() before the
  /// first arrival).  Every placement happens at clock >= job start, which
  /// is the online "no assignment before arrival" invariant.
  Time clock = std::numeric_limits<Time>::lowest();
  /// Accumulated busy time of all machines — equals cost(s) of the engine's
  /// schedule against the residual instance at every point of the stream.
  Time online_cost = 0;

  std::string summary() const;

  friend bool operator==(const EngineStats& a, const EngineStats& b) noexcept {
    return a.jobs_assigned == b.jobs_assigned &&
           a.machines_opened == b.machines_opened &&
           a.machines_closed == b.machines_closed &&
           a.open_machines == b.open_machines &&
           a.peak_open_machines == b.peak_open_machines &&
           a.active_jobs == b.active_jobs &&
           a.peak_active_jobs == b.peak_active_jobs &&
           a.jobs_cancelled == b.jobs_cancelled &&
           a.jobs_preempted == b.jobs_preempted &&
           a.cancels_ignored == b.cancels_ignored &&
           a.slots_recycled == b.slots_recycled &&
           a.busy_time_refunded == b.busy_time_refunded &&
           a.clock == b.clock && a.online_cost == b.online_cost;
  }
  friend bool operator!=(const EngineStats& a, const EngineStats& b) noexcept {
    return !(a == b);
  }
};

}  // namespace busytime

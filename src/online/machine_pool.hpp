// Incremental machine-pool state for the streaming engine.
//
// The pool exploits the one structural fact the online setting guarantees —
// jobs arrive in non-decreasing start order — to make every operation cheap:
//
//  * feasibility on a machine is just "active jobs < g", because every job
//    active at the arrival instant overlaps the newcomer, and any future
//    arrival re-checks at its own instant (so the per-placement check is
//    also sufficient for validity over all time);
//  * each machine's busy time (union length of its jobs, Section 2) grows
//    by an O(1)-computable extension: starts never decrease, so a new job
//    either stretches the machine's current busy segment or opens a fresh
//    one after an idle gap;
//  * a machine whose last job completed can be closed permanently — reusing
//    it would cost exactly as much as a fresh machine (the paper's WLOG
//    that disconnected busy periods split into separate machines), so the
//    scan set stays proportional to the *current* load, not the history.
//
// Cancellations run the accounting in reverse: truncate(m, c, ...) removes
// one running job and refunds the part of the machine's busy tail no longer
// covered by any remaining job — an O(g) incremental update, never a
// from-scratch union recomputation.
//
// Machine ids are *stable* (dense, in opening order, never reused) but live
// behind a slot indirection: closed machines return their storage slot to a
// free list and the next open_machine() recycles it, so a long-lived stream
// holds one Machine struct (with its heap allocation) per *concurrently*
// open machine plus 4 bytes per machine ever opened — not a full struct per
// machine ever opened.
//
// Pinned machines are the one exception to auto-closing: the epoch-hybrid
// policy pre-assigns a whole batch to machines before replaying the batch's
// arrivals, so those machines must survive idle gaps until the batch is
// fully placed.
#pragma once

#include <cassert>
#include <cstdint>
#include <optional>
#include <vector>

#include "core/schedule.hpp"
#include "core/time_types.hpp"
#include "online/engine_stats.hpp"

namespace busytime {

class MachinePool {
 public:
  explicit MachinePool(int g);

  int g() const noexcept { return g_; }

  /// Advances the stream clock to `now` (monotone; asserts otherwise):
  /// retires jobs with completion <= now and closes machines that became
  /// idle, returning their slots to the free list.  Call once per event
  /// instant before querying fits/extension.
  void advance(Time now);

  /// Ids of the currently open machines, in ascending (opening) order.
  const std::vector<MachineId>& open_machines() const noexcept { return open_; }

  /// True iff machine `m` can take one more job at the current clock.
  bool fits(MachineId m) const;

  /// Busy-time increase of placing `iv` on open machine `m` right now.
  /// Always <= iv.length(); strictly less iff the machine's busy segment
  /// reaches past iv.start.
  Time extension(MachineId m, const Interval& iv) const;

  /// Opens a machine and returns its id.  Ids are dense and stable; the
  /// backing slot is recycled from a closed machine when one is free.
  /// Pinned machines are exempt from idle auto-closing until unpin_all().
  MachineId open_machine(bool pinned = false);

  /// Places `iv` on machine `m` at the current clock (advance(iv.start)
  /// must have been called).  Updates busy time incrementally.
  void place(MachineId m, const Interval& iv);

  /// Truncates a running job on open machine `m` at the current clock: the
  /// job previously placed with completion `completion` stops now.  Frees
  /// its capacity slot, refunds the machine's busy tail that no other
  /// running job covers, and returns the refund.  Returns nullopt — with no
  /// stats touched — when no such running job exists on `m` (replay
  /// guarantees one; direct API callers count the event as ignored).
  /// Advance to the cancel instant first.
  std::optional<Time> truncate(MachineId m, Time completion, bool preempt);

  /// Counts a cancel/preempt event that had no effect (job already done,
  /// not started, or already retracted).
  void note_ignored_cancel() { ++stats_.cancels_ignored; }

  /// Counts a retraction of a job that was never placed (epoch-hybrid
  /// pending batch): the tail was never charged, so nothing is refunded.
  void note_pending_cancel(bool preempt) {
    ++(preempt ? stats_.jobs_preempted : stats_.jobs_cancelled);
  }

  /// Clears all pins; idle pinned machines close on the next advance().
  void unpin_all();

  const EngineStats& stats() const noexcept { return stats_; }

  /// Machines ever opened (== the id the next open_machine() returns).
  std::size_t machines_ever() const noexcept { return slot_of_.size(); }
  /// Backing Machine structs in existence (high-water of open machines).
  std::size_t slot_count() const noexcept { return slots_.size(); }

 private:
  /// Cold per-slot storage: completions of jobs still running, as a binary
  /// min-heap.  Touched only when a completion is actually due (advance),
  /// a job is placed, or a truncate rewrites the running set.
  struct Machine {
    std::vector<Time> active;
  };

  static constexpr std::int32_t kNoSlot = -1;

  std::int32_t slot_index(MachineId id) const {
    const std::int32_t slot = slot_of_[static_cast<std::size_t>(id)];
    assert(slot != kNoSlot);
    return slot;
  }

  int g_ = 1;
  std::vector<Machine> slots_;
  // Hot per-slot scalars, SoA (the algo/profile.hpp discipline): the
  // advance/fits/extension scans the policies issue per event read these
  // parallel flat vectors and never touch the heap storage unless a
  // completion is due.  next_completion_ caches the heap minimum (kIdle
  // when no job is running) so the common advance step is one flat
  // compare per open machine.
  std::vector<Time> next_completion_;
  std::vector<Time> seg_end_;
  std::vector<std::int32_t> active_count_;
  std::vector<std::uint8_t> slot_has_jobs_;
  std::vector<std::uint8_t> slot_pinned_;
  /// External id -> slot index; kNoSlot once the machine has closed.  This
  /// is the only per-machine-ever state (4 bytes each).
  std::vector<std::int32_t> slot_of_;
  std::vector<std::int32_t> free_slots_;  // LIFO: hottest storage first
  std::vector<MachineId> open_;
  std::vector<MachineId> pinned_;
  EngineStats stats_;
};

}  // namespace busytime

// Incremental machine-pool state for the streaming engine.
//
// The pool exploits the one structural fact the online setting guarantees —
// jobs arrive in non-decreasing start order — to make every operation cheap:
//
//  * feasibility on a machine is just "active jobs < g", because every job
//    active at the arrival instant overlaps the newcomer, and any future
//    arrival re-checks at its own instant (so the per-placement check is
//    also sufficient for validity over all time);
//  * each machine's busy time (union length of its jobs, Section 2) grows
//    by an O(1)-computable extension: starts never decrease, so a new job
//    either stretches the machine's current busy segment or opens a fresh
//    one after an idle gap;
//  * a machine whose last job completed can be closed permanently — reusing
//    it would cost exactly as much as a fresh machine (the paper's WLOG
//    that disconnected busy periods split into separate machines), so the
//    scan set stays proportional to the *current* load, not the history.
//
// Pinned machines are the one exception to auto-closing: the epoch-hybrid
// policy pre-assigns a whole batch to machines before replaying the batch's
// arrivals, so those machines must survive idle gaps until the batch is
// fully placed.
#pragma once

#include <vector>

#include "core/schedule.hpp"
#include "core/time_types.hpp"
#include "online/engine_stats.hpp"

namespace busytime {

class MachinePool {
 public:
  explicit MachinePool(int g);

  int g() const noexcept { return g_; }

  /// Advances the stream clock to `now` (monotone; asserts otherwise):
  /// retires jobs with completion <= now and closes machines that became
  /// idle.  Call once per arrival instant before querying fits/extension.
  void advance(Time now);

  /// Ids of the currently open machines, in ascending (opening) order.
  const std::vector<MachineId>& open_machines() const noexcept { return open_; }

  /// True iff machine `m` can take one more job at the current clock.
  bool fits(MachineId m) const;

  /// Busy-time increase of placing `iv` on open machine `m` right now.
  /// Always <= iv.length(); strictly less iff the machine's busy segment
  /// reaches past iv.start.
  Time extension(MachineId m, const Interval& iv) const;

  /// Opens a fresh machine and returns its id.  Pinned machines are exempt
  /// from idle auto-closing until unpin_all().
  MachineId open_machine(bool pinned = false);

  /// Places `iv` on machine `m` at the current clock (advance(iv.start)
  /// must have been called).  Updates busy time incrementally.
  void place(MachineId m, const Interval& iv);

  /// Clears all pins; idle pinned machines close on the next advance().
  void unpin_all();

  const EngineStats& stats() const noexcept { return stats_; }

 private:
  struct Machine {
    /// Completions of jobs still running, as a binary min-heap.
    std::vector<Time> active;
    /// End of the machine's current busy segment (union-length frontier).
    Time seg_end = 0;
    bool has_jobs = false;
    bool pinned = false;
  };

  int g_ = 1;
  std::vector<Machine> machines_;
  std::vector<MachineId> open_;
  std::vector<MachineId> pinned_;
  EngineStats stats_;
};

}  // namespace busytime

// Epoch-batched hybrid policy: delayed commitment + offline re-optimization.
//
// Pure greedy online policies commit at the arrival instant and pay for it;
// the hybrid trades a bounded decision latency (at most one epoch) for the
// packing quality of the paper's offline algorithms.  Arrivals accumulate in
// a pending batch; when an arrival falls more than `epoch_length` after the
// batch's first start (or the batch hits `max_batch` jobs), the batch is
// solved as an offline MinBusy instance by solve_minbusy_auto — which picks
// the strongest applicable algorithm per connected component — and the
// computed machine groups are materialized onto fresh machines of the pool.
//
// Job intervals are never shifted: the hybrid models a scheduler with one
// epoch of lookahead, and its cost is directly comparable to the greedy
// policies' on the same stream.  Within a batch the offline solver respects
// capacity g; across batches machines are disjoint, so the result is a valid
// schedule of the full instance.
#pragma once

#include <vector>

#include "online/event.hpp"
#include "online/scheduler.hpp"

namespace busytime {

class EpochHybrid final : public OnlineScheduler {
 public:
  EpochHybrid(int g, const PolicyParams& params)
      : OnlineScheduler(g), params_(params) {}

  std::string name() const override { return to_string(OnlinePolicy::kEpochHybrid); }

  /// Re-optimizes and places the still-pending batch (end of stream).
  void flush() override;

 protected:
  void handle(JobId id, const Job& job) override;

  /// Retractions of jobs still pending in the batch truncate the pending
  /// copy before it is ever placed (no busy time was charged, so nothing is
  /// refunded); jobs already materialized fall through to the pool path.
  bool handle_cancel(JobId id, const Job& job, Time at, bool preempt) override;

 private:
  void flush_batch();

  PolicyParams params_;
  /// Pending arrivals of the current epoch, in arrival (= start) order.
  std::vector<ArrivalEvent> pending_;
  Time epoch_start_ = 0;
};

}  // namespace busytime

#include "online/scheduler.hpp"

#include <limits>
#include <sstream>
#include <stdexcept>

#include "online/epoch_hybrid.hpp"

namespace busytime {

void OnlineScheduler::on_arrival(JobId id, const Job& job) {
  if (started_ && job.start() < last_start_) {
    std::ostringstream oss;
    oss << "out-of-order arrival: job " << id << " starts at " << job.start()
        << " but the stream is already at " << last_start_;
    throw std::invalid_argument(oss.str());
  }
  started_ = true;
  last_start_ = job.start();

  schedule_.ensure_size(static_cast<std::size_t>(id) + 1);
  pool_.advance(job.start());
  handle(id, job);
}

void OnlineFirstFit::handle(JobId id, const Job& job) {
  for (const MachineId m : pool_.open_machines()) {
    if (pool_.fits(m)) {
      commit(id, m, job);
      return;
    }
  }
  commit(id, pool_.open_machine(), job);
}

void OnlineBestFit::handle(JobId id, const Job& job) {
  MachineId best = Schedule::kUnscheduled;
  Time best_ext = std::numeric_limits<Time>::max();
  for (const MachineId m : pool_.open_machines()) {
    if (!pool_.fits(m)) continue;
    const Time ext = pool_.extension(m, job.interval);
    if (ext < best_ext) {
      best = m;
      best_ext = ext;
    }
  }
  if (best == Schedule::kUnscheduled) best = pool_.open_machine();
  commit(id, best, job);
}

std::string to_string(OnlinePolicy policy) {
  switch (policy) {
    case OnlinePolicy::kFirstFit: return "online-first-fit";
    case OnlinePolicy::kBestFit: return "online-best-fit";
    case OnlinePolicy::kEpochHybrid: return "epoch-hybrid";
  }
  return "unknown";
}

std::unique_ptr<OnlineScheduler> make_scheduler(OnlinePolicy policy, int g,
                                                const PolicyParams& params) {
  switch (policy) {
    case OnlinePolicy::kFirstFit: return std::make_unique<OnlineFirstFit>(g);
    case OnlinePolicy::kBestFit: return std::make_unique<OnlineBestFit>(g);
    case OnlinePolicy::kEpochHybrid: return std::make_unique<EpochHybrid>(g, params);
  }
  throw std::invalid_argument("unknown online policy");
}

}  // namespace busytime

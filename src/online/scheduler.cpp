#include "online/scheduler.hpp"

#include <limits>
#include <sstream>
#include <stdexcept>

#include "online/epoch_hybrid.hpp"

namespace busytime {

namespace {

[[noreturn]] void throw_out_of_order(const char* what, JobId id, Time at,
                                     Time stream_time) {
  std::ostringstream oss;
  oss << "out-of-order " << what << ": job " << id << " at " << at
      << " but the stream is already at " << stream_time;
  throw std::invalid_argument(oss.str());
}

}  // namespace

void OnlineScheduler::on_arrival(JobId id, const Job& job) {
  if (started_ && job.start() < last_time_)
    throw_out_of_order("arrival", id, job.start(), last_time_);
  started_ = true;
  last_time_ = job.start();

  schedule_.ensure_size(static_cast<std::size_t>(id) + 1);
  pool_.advance(job.start());
  handle(id, job);
}

void OnlineScheduler::on_cancel(JobId id, const Job& job, Time at, bool preempt) {
  if (started_ && at < last_time_)
    throw_out_of_order(preempt ? "preemption" : "cancellation", id, at, last_time_);
  started_ = true;
  last_time_ = at;

  schedule_.ensure_size(static_cast<std::size_t>(id) + 1);
  if (retracted_.size() < schedule_.size()) retracted_.resize(schedule_.size(), 0);
  pool_.advance(at);

  // No-op retractions: the job already finished (at >= completion), never
  // started its run (at <= start), or was retracted before.
  if (at <= job.start() || at >= job.completion() ||
      retracted_[static_cast<std::size_t>(id)]) {
    pool_.note_ignored_cancel();
    return;
  }
  if (handle_cancel(id, job, at, preempt)) {
    retracted_[static_cast<std::size_t>(id)] = 1;
  } else {
    pool_.note_ignored_cancel();
  }
}

bool OnlineScheduler::handle_cancel(JobId id, const Job& job, Time /*at*/,
                                    bool preempt) {
  const MachineId m = schedule_.machine_of(id);
  if (m == Schedule::kUnscheduled) return false;  // never arrived: nothing to undo
  return pool_.truncate(m, job.completion(), preempt).has_value();
}

void OnlineFirstFit::handle(JobId id, const Job& job) {
  for (const MachineId m : pool_.open_machines()) {
    if (pool_.fits(m)) {
      commit(id, m, job);
      return;
    }
  }
  commit(id, pool_.open_machine(), job);
}

void OnlineBestFit::handle(JobId id, const Job& job) {
  MachineId best = Schedule::kUnscheduled;
  Time best_ext = std::numeric_limits<Time>::max();
  for (const MachineId m : pool_.open_machines()) {
    if (!pool_.fits(m)) continue;
    const Time ext = pool_.extension(m, job.interval);
    if (ext < best_ext) {
      best = m;
      best_ext = ext;
    }
  }
  if (best == Schedule::kUnscheduled) best = pool_.open_machine();
  commit(id, best, job);
}

std::string to_string(OnlinePolicy policy) {
  switch (policy) {
    case OnlinePolicy::kFirstFit: return "online-first-fit";
    case OnlinePolicy::kBestFit: return "online-best-fit";
    case OnlinePolicy::kEpochHybrid: return "epoch-hybrid";
  }
  return "unknown";
}

std::unique_ptr<OnlineScheduler> make_scheduler(OnlinePolicy policy, int g,
                                                const PolicyParams& params) {
  switch (policy) {
    case OnlinePolicy::kFirstFit: return std::make_unique<OnlineFirstFit>(g);
    case OnlinePolicy::kBestFit: return std::make_unique<OnlineBestFit>(g);
    case OnlinePolicy::kEpochHybrid: return std::make_unique<EpochHybrid>(g, params);
  }
  throw std::invalid_argument("unknown online policy");
}

}  // namespace busytime

#include "viz/gantt.hpp"

#include <algorithm>
#include <sstream>

namespace busytime {

namespace {

char glyph_for(JobId j) {
  static constexpr char kGlyphs[] =
      "0123456789abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ";
  return kGlyphs[static_cast<std::size_t>(j) % (sizeof(kGlyphs) - 1)];
}

}  // namespace

std::string render_gantt(const Instance& inst, const Schedule& s,
                         const GanttOptions& options) {
  std::ostringstream out;
  const auto per_machine = s.jobs_per_machine();
  if (per_machine.empty()) return "(empty schedule)\n";

  // Global time range of scheduled jobs.
  Time lo = 0, hi = 0;
  bool any = false;
  for (std::size_t j = 0; j < inst.size(); ++j) {
    if (!s.is_scheduled(static_cast<JobId>(j))) continue;
    const auto& iv = inst.job(static_cast<JobId>(j)).interval;
    lo = any ? std::min(lo, iv.start) : iv.start;
    hi = any ? std::max(hi, iv.completion) : iv.completion;
    any = true;
  }
  if (!any) return "(empty schedule)\n";

  const int columns = std::max(options.width - 12, 10);
  const double scale = static_cast<double>(columns) / static_cast<double>(hi - lo);
  auto column_of = [&](Time t) {
    const int c = static_cast<int>(static_cast<double>(t - lo) * scale);
    return std::clamp(c, 0, columns - 1);
  };

  out << "time " << lo << " .. " << hi << "  (" << columns << " cols, "
      << per_machine.size() << " machines)\n";
  for (std::size_t m = 0; m < per_machine.size(); ++m) {
    std::string row(static_cast<std::size_t>(columns), ' ');
    // Mark span (busy or between jobs of this machine) lightly first.
    for (const JobId j : per_machine[m]) {
      const auto& iv = inst.job(j).interval;
      const int from = column_of(iv.start);
      const int to = std::max(column_of(iv.completion - 1), from);
      for (int c = from; c <= to; ++c) {
        auto& cell = row[static_cast<std::size_t>(c)];
        cell = (cell == ' ') ? glyph_for(j) : '*';  // '*' = stacked jobs
      }
    }
    out << "M" << m;
    for (std::size_t pad = std::to_string(m).size(); pad < 4; ++pad) out << ' ';
    out << "|" << row << "|\n";
  }

  std::vector<JobId> unscheduled;
  for (std::size_t j = 0; j < inst.size(); ++j)
    if (!s.is_scheduled(static_cast<JobId>(j)))
      unscheduled.push_back(static_cast<JobId>(j));
  if (!unscheduled.empty()) {
    out << "unscheduled:";
    for (const JobId j : unscheduled) out << " " << j;
    out << "\n";
  }

  if (options.show_legend && inst.size() <= 36) {
    out << "legend:";
    for (std::size_t j = 0; j < inst.size(); ++j)
      out << " " << j << "=" << glyph_for(static_cast<JobId>(j));
    out << "  (*=overlap)\n";
  }
  return out.str();
}

}  // namespace busytime

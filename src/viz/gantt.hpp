// ASCII Gantt-chart rendering of schedules.
//
// One row per machine, time flowing right; each job is a run of its id's
// glyph, '.' marks idle-but-within-span time.  Used by the examples and the
// CLI to make schedules inspectable without plotting tools.
#pragma once

#include <string>

#include "core/instance.hpp"
#include "core/schedule.hpp"

namespace busytime {

struct GanttOptions {
  int width = 78;          ///< total chart columns (time axis is scaled to fit)
  bool show_legend = true; ///< append "job -> glyph" legend for small n
};

/// Renders the scheduled jobs of `s`.  Unscheduled jobs are listed below the
/// chart.  Empty schedules render a stub line.
std::string render_gantt(const Instance& inst, const Schedule& s,
                         const GanttOptions& options = {});

}  // namespace busytime

// SolverSpec: the request half of the unified solver API.
//
// A spec is a string-keyed solver name (resolved against the SolverRegistry)
// plus a small set of typed options shared by every solver family:
//
//   g=G           capacity override (rebuilds the instance with g = G)
//   budget=T      busy-time budget for the MaxThroughput solvers
//   epoch=T       epoch length of the epoch-hybrid online policy
//   max_batch=K   batch cap of the epoch-hybrid online policy
//   seed=S        seed for randomized solvers (none yet; reserved)
//   improve=0|1   run local-search post-optimization on the result
//   threads=N     sharded-replay workers for the online policies
//                 (0 = exec process default, 1 = sequential; results are
//                 identical at every thread count)
//   deadline_ms=D per-request deadline, honored at component boundaries
//                 (0 = none); expired requests return status kDeadline
//
// Options a chosen solver never looks at are recorded in
// SolveResult::ignored_options rather than silently accepted.
//
// Specs parse from "name" or "name:key=value,key=value" strings, the format
// the busytime_cli accepts via --solver; malformed input throws SpecError
// with a message naming the offending token.
#pragma once

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "api/request.hpp"
#include "core/time_types.hpp"

namespace busytime {

/// Raised on malformed solver specs or option strings.
class SpecError : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

/// Typed options understood across solver families.  Defaults reproduce the
/// historical free-function behavior.
struct SolverOptions {
  /// Capacity override; 0 keeps the instance's own g.
  int g = 0;
  /// Busy-time budget for MaxThroughput solvers; < 0 means "not set"
  /// (running a budgeted solver without one is an error).
  Time budget = -1;
  /// Epoch length for the epoch-hybrid online policy.
  Time epoch_length = 1024;
  /// Batch cap for the epoch-hybrid online policy.
  int max_batch = 4096;
  /// Seed for randomized solvers (reserved; all current solvers are
  /// deterministic).
  std::uint64_t seed = 1;
  /// Run local-search post-optimization after the solver (full MinBusy
  /// schedules only; ignored by throughput solvers).
  bool improve = false;
  /// Sharded-replay worker count for the online policies: 1 = sequential,
  /// 0 = exec::default_threads().  Never changes results, only speed.
  int threads = 1;
  /// Per-request deadline in milliseconds, measured from request start
  /// (Service::submit resolves it at submission, so queue wait counts);
  /// 0 = no deadline.  Honored at component boundaries: an expired request
  /// returns a SolveResult with status kDeadline and an empty schedule.
  double deadline_ms = 0;

  /// Applies one "key=value" assignment; throws SpecError on unknown keys,
  /// non-numeric values, or out-of-range values.
  void set(const std::string& key, const std::string& value);

  /// Parses a comma-separated "k=v,k=v" option list ("" is valid and empty).
  static SolverOptions parse(const std::string& text);

  /// Option keys holding non-default values, in the documented key order.
  /// The run path diffs this against what the chosen solver consumes to
  /// fill SolveResult::ignored_options.
  std::vector<std::string> non_default_keys() const;

  /// Canonical text of one option's current value (the same rendering
  /// to_string() uses).  Throws SpecError on unknown keys.
  std::string value_of(const std::string& key) const;
};

/// A solver invocation request: registry name + options + per-request
/// controls.
struct SolverSpec {
  std::string name = "auto";
  SolverOptions options;
  /// Cooperative cancellation handle for this request (inert by default).
  /// Callers keep a copy and trigger it; the run path checks it at
  /// component boundaries.  Never serialized.
  CancelToken cancel;
  /// Request-scoped span collector (src/obs/).  Callers that want a span
  /// tree set this to a fresh obs::TraceContext and keep their reference;
  /// the run path (or Service) carries it into the RequestContext and
  /// records queue wait, view build/hit, per-component solves, shard
  /// replays, ... into it.  Null = tracing off.  Never serialized.
  std::shared_ptr<obs::TraceContext> trace;
  /// Runtime context installed by the run path / Service (resolved deadline
  /// instant, cancel token, cached-view hook, metrics/trace sinks).
  /// Internal: callers set options.deadline_ms, `cancel`, and `trace`
  /// instead.  Never serialized.
  std::shared_ptr<const RequestContext> context;

  /// Parses "name" or "name:k=v,k=v".  Throws SpecError on an empty name or
  /// malformed option list.
  static SolverSpec parse(const std::string& text);

  /// Canonical "name:k=v,..." form (only non-default options are printed).
  std::string to_string() const;

  /// Result-equivalence key for the Service's result cache: the solver name
  /// plus the sorted non-default options the named solver actually consumes.
  /// Two specs with equal canonical keys compute bit-identical results on
  /// the same instance — ignored options (recorded in
  /// SolveResult::ignored_options) and run-path controls that never change
  /// result bytes (threads, deadline_ms) are excluded by the same
  /// canonicalization that drives ignored-option reporting (api/registry).
  /// Unknown solver names fall back to every non-control non-default key.
  std::string canonical_key() const;
};

}  // namespace busytime

// SolverSpec: the request half of the unified solver API.
//
// A spec is a string-keyed solver name (resolved against the SolverRegistry)
// plus a small set of typed options shared by every solver family:
//
//   g=G           capacity override (rebuilds the instance with g = G)
//   budget=T      busy-time budget for the MaxThroughput solvers
//   epoch=T       epoch length of the epoch-hybrid online policy
//   max_batch=K   batch cap of the epoch-hybrid online policy
//   seed=S        seed for randomized solvers (none yet; reserved)
//   improve=0|1   run local-search post-optimization on the result
//   threads=N     sharded-replay workers for the online policies
//                 (0 = exec process default, 1 = sequential; results are
//                 identical at every thread count)
//
// Specs parse from "name" or "name:key=value,key=value" strings, the format
// the busytime_cli accepts via --solver; malformed input throws SpecError
// with a message naming the offending token.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

#include "core/time_types.hpp"

namespace busytime {

/// Raised on malformed solver specs or option strings.
class SpecError : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

/// Typed options understood across solver families.  Defaults reproduce the
/// historical free-function behavior.
struct SolverOptions {
  /// Capacity override; 0 keeps the instance's own g.
  int g = 0;
  /// Busy-time budget for MaxThroughput solvers; < 0 means "not set"
  /// (running a budgeted solver without one is an error).
  Time budget = -1;
  /// Epoch length for the epoch-hybrid online policy.
  Time epoch_length = 1024;
  /// Batch cap for the epoch-hybrid online policy.
  int max_batch = 4096;
  /// Seed for randomized solvers (reserved; all current solvers are
  /// deterministic).
  std::uint64_t seed = 1;
  /// Run local-search post-optimization after the solver (full MinBusy
  /// schedules only; ignored by throughput solvers).
  bool improve = false;
  /// Sharded-replay worker count for the online policies: 1 = sequential,
  /// 0 = exec::default_threads().  Never changes results, only speed.
  int threads = 1;

  /// Applies one "key=value" assignment; throws SpecError on unknown keys,
  /// non-numeric values, or out-of-range values.
  void set(const std::string& key, const std::string& value);

  /// Parses a comma-separated "k=v,k=v" option list ("" is valid and empty).
  static SolverOptions parse(const std::string& text);
};

/// A solver invocation request: registry name + options.
struct SolverSpec {
  std::string name = "auto";
  SolverOptions options;

  /// Parses "name" or "name:k=v,k=v".  Throws SpecError on an empty name or
  /// malformed option list.
  static SolverSpec parse(const std::string& text);

  /// Canonical "name:k=v,..." form (only non-default options are printed).
  std::string to_string() const;
};

}  // namespace busytime

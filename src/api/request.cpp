#include "api/request.hpp"

namespace busytime {

std::string to_string(SolveStatus status) {
  switch (status) {
    case SolveStatus::kOk: return "ok";
    case SolveStatus::kDeadline: return "deadline";
    case SolveStatus::kCancelled: return "cancelled";
    case SolveStatus::kShedded: return "shedded";
  }
  return "unknown";
}

}  // namespace busytime

// SolverRegistry: the single introspectable surface over every algorithm in
// the library.
//
// Each solver — the Section 3 MinBusy algorithms, the exact reference
// solvers, the Section 4 MaxThroughput algorithms, the Section 5 extensions,
// and the online streaming policies — registers a SolverInfo carrying:
//
//   * an applicability predicate built on core/classify (so callers and the
//     dispatcher can ask "does this solver apply here?" before running it);
//   * an optimality class and approximation-ratio guarantee;
//   * a dispatch priority (the auto-dispatcher picks the highest-priority
//     applicable solver per connected component);
//   * the run function, uniform across families:
//     (Instance, SolverSpec) -> SolveResult.
//
// Built-in solvers self-register on first registry access (one registration
// unit per family under src/api/builtin_*.cpp); applications may add their
// own via SolverRegistry::instance().add().
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "api/solve_result.hpp"
#include "api/solver_spec.hpp"
#include "core/classify.hpp"
#include "core/instance.hpp"

namespace busytime {

// The registry only names the event-trace type (run_events hook,
// run_solver overload); consumers that replay traces include
// online/event.hpp themselves.
class EventTrace;

enum class SolverKind {
  kOffline,     ///< full MinBusy schedules (Section 3 + heuristics)
  kExact,       ///< exponential exact reference solvers
  kThroughput,  ///< budgeted MaxThroughput solvers (Section 4)
  kOnline,      ///< streaming policies (commit at arrival instants)
  kExtension,   ///< Section 5 extensions on the base job model
};

std::string to_string(SolverKind kind);

enum class OptimalityClass {
  kExact,      ///< provably optimal whenever applicable
  kApprox,     ///< worst-case approximation guarantee (see ratio)
  kHeuristic,  ///< no worst-case guarantee
};

std::string to_string(OptimalityClass optimality);

struct SolverInfo {
  std::string name;
  SolverKind kind = SolverKind::kOffline;
  OptimalityClass optimality = OptimalityClass::kHeuristic;
  /// Worst-case cost / OPT guarantee; 1 for exact solvers, 0 when none.
  double ratio = 0;
  /// One-line description with the paper anchor.
  std::string description;
  /// Structural precondition (core/classify predicates, size caps).  Must be
  /// cheap relative to solving; true means run() is safe to call.
  std::function<bool(const Instance&)> applicable;
  /// Budgeted solvers require options.budget >= 0.
  bool needs_budget = false;
  /// Auto-dispatch rank: per component, solve_minbusy_auto runs the
  /// applicable dispatchable solver with the highest priority.  Negative
  /// means "never auto-dispatched" (exact references, online policies, ...).
  int dispatch_priority = -1;
  /// The solver.  Fills schedule + trace (+ stats for online policies);
  /// run_solver derives cost, bounds, validity, and timing uniformly.
  std::function<SolveResult(const Instance&, const SolverSpec&)> run;
  /// Optional classification-cached form of `applicable`: receives the
  /// precomputed core/classify result for the instance, so per-component
  /// dispatch classifies once instead of once per candidate solver.  Must
  /// agree with `applicable` whenever cls == classify(inst).  When absent,
  /// is_applicable falls back to `applicable`.  (The default member
  /// initializer keeps braced registrations that stop at `run` warning-free
  /// under -Wmissing-field-initializers.)
  std::function<bool(const Instance&, const InstanceClass&)>
      applicable_classified = nullptr;
  /// Optional event-trace runner for online solvers: replays arrivals
  /// interleaved with cancellation/preemption events.  Fills schedule,
  /// stats, and trace like `run`; run_solver(EventTrace) derives the
  /// residual-measured cost, bounds, and validity uniformly.  Online
  /// solvers without this hook are NotApplicable to traces with
  /// retractions (the replay would silently drop them).
  std::function<SolveResult(const EventTrace&, const SolverSpec&)> run_events =
      nullptr;
  /// Option keys this solver's run hook reads, beyond the ones every run
  /// consumes uniformly (g, deadline_ms, the threads parallelism knob,
  /// budget when needs_budget, improve for offline/exact solvers).  Any
  /// other non-default option on a request is recorded in
  /// SolveResult::ignored_options instead of silently accepted.
  std::vector<std::string> consumes = {};

  /// Applicability with a precomputed classification (see
  /// applicable_classified).
  bool is_applicable(const Instance& inst, const InstanceClass& cls) const {
    return applicable_classified ? applicable_classified(inst, cls)
                                 : applicable(inst);
  }
};

class SolverRegistry {
 public:
  /// The process-wide registry, with all built-in solvers registered.
  static SolverRegistry& instance();

  /// Registers a solver; throws std::invalid_argument on duplicate names or
  /// missing run/applicable hooks.
  void add(SolverInfo info);

  /// nullptr when `name` is not registered.
  const SolverInfo* find(const std::string& name) const;
  /// Throws std::invalid_argument (listing known names) when absent.
  const SolverInfo& at(const std::string& name) const;

  /// All registered names, sorted.
  std::vector<std::string> names() const;
  /// All solvers in name order.
  std::vector<const SolverInfo*> all() const;
  /// Solvers of one kind, in name order.
  std::vector<const SolverInfo*> by_kind(SolverKind kind) const;
  /// Auto-dispatchable solvers, strongest (highest priority) first.
  const std::vector<const SolverInfo*>& dispatchable() const;

  std::size_t size() const noexcept { return solvers_.size(); }

 private:
  std::map<std::string, SolverInfo> solvers_;
  std::vector<const SolverInfo*> dispatchable_;  // priority-descending
};

/// Resolves `spec` against the registry, checks applicability and required
/// options, runs the solver, and fills the uniform SolveResult fields
/// (cost, throughput, bounds, ratio, validity, wall time, default stats).
/// Throws std::invalid_argument for unknown solvers, SpecError for missing
/// required options, and NotApplicableError when the predicate rejects.
class NotApplicableError : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

/// A thin shim over the process-default busytime::Service (see
/// service/service.hpp), which owns the thread pool and per-request
/// bookkeeping; defined in service/service.cpp.
SolveResult run_solver(const Instance& inst, const SolverSpec& spec);

/// Runs a solver on an event trace (arrivals + cancellations/preemptions).
/// Online solvers replay the merged event stream — their SolveResult counts
/// cancels, refunds, and a cost measured against the residual instance;
/// every other solver kind solves the residual instance directly (the
/// honest offline comparison: the workload that actually ran).  Traces
/// without retraction records behave exactly like run_solver(trace.base()).
/// Throws NotApplicableError for an online solver the event replay does not
/// know how to drive (custom registrations outside the built-in policies).
SolveResult run_solver(const EventTrace& trace, const SolverSpec& spec);

namespace detail {
// Non-default options the chosen solver never reads — the canonicalization
// behind SolveResult::ignored_options and (inverted) the consumed-key set of
// SolverSpec::canonical_key.  Run-path control knobs (threads, deadline_ms)
// are neither consumed nor ignored.
std::vector<std::string> ignored_options(const SolverInfo& info,
                                         const SolverOptions& options);

// One registration unit per solver family (src/api/builtin_*.cpp).
void register_offline_solvers(SolverRegistry& registry);
void register_throughput_solvers(SolverRegistry& registry);
void register_online_solvers(SolverRegistry& registry);
void register_extension_solvers(SolverRegistry& registry);

// The context-aware solve cores behind run_solver and Service::submit:
// resolve the spec, install the runtime RequestContext (deadline instant,
// cancel token) when controls are set, run the solver with control
// checkpoints at component boundaries, record ignored options, and fill
// the uniform SolveResult fields.  Deadline/cancel trips surface as
// SolveStatus, every other failure as the exceptions run_solver documents.
SolveResult solve_request(const Instance& inst, const SolverSpec& spec);
SolveResult solve_request(const EventTrace& trace, const SolverSpec& spec);
}  // namespace detail

}  // namespace busytime

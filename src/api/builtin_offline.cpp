// Registry entries for the offline MinBusy solvers (Section 3), the exact
// reference solvers, and the engineering heuristics.
#include "algo/best_cut.hpp"
#include "algo/clique_matching.hpp"
#include "algo/clique_setcover.hpp"
#include "algo/dispatch.hpp"
#include "algo/exact_minbusy.hpp"
#include "algo/first_fit.hpp"
#include "algo/local_search.hpp"
#include "algo/one_sided.hpp"
#include "algo/proper_clique_dp.hpp"
#include "api/registry.hpp"
#include "core/classify.hpp"
#include "core/instance_view.hpp"
#include "obs/hooks.hpp"

namespace busytime::detail {

namespace {

/// Wraps a full-schedule solver into the uniform result shape with a
/// single-entry trace (the solver did not decompose).
SolveResult whole_instance(Schedule s, const Instance& inst, const std::string& algo) {
  SolveResult r;
  r.schedule = std::move(s);
  r.trace.push_back({inst.size(), algo});
  return r;
}

/// Registers `info` with a classification-cached predicate, so dispatch
/// reuses the per-component classify result instead of re-deriving it per
/// candidate solver.
void add_classified(SolverRegistry& registry, SolverInfo info,
                    std::function<bool(const Instance&, const InstanceClass&)> pred) {
  info.applicable_classified = std::move(pred);
  registry.add(std::move(info));
}

}  // namespace

void register_offline_solvers(SolverRegistry& registry) {
  add_classified(
      registry,
      {
          "one_sided",
          SolverKind::kOffline,
          OptimalityClass::kExact,
          1.0,
          "Observation 3.1 greedy: optimal for one-sided clique instances",
          [](const Instance& inst) { return is_one_sided(inst); },
          /*needs_budget=*/false,
          /*dispatch_priority=*/60,
          [](const Instance& inst, const SolverSpec&) {
            return whole_instance(solve_one_sided(inst), inst, "one_sided");
          },
      },
      // A one-sided instance is automatically a clique (a shared start or a
      // shared last slot is a common time point), so cls.one_sided agrees
      // with the bare is_one_sided predicate on every non-empty instance —
      // and components are never empty.
      [](const Instance&, const InstanceClass& cls) { return cls.one_sided; });

  add_classified(
      registry,
      {
          "proper_clique_dp",
          SolverKind::kOffline,
          OptimalityClass::kExact,
          1.0,
          "FindBestConsecutive DP (Algorithm 2): optimal for proper cliques",
          [](const Instance& inst) { return is_clique(inst) && is_proper(inst); },
          /*needs_budget=*/false,
          /*dispatch_priority=*/50,
          [](const Instance& inst, const SolverSpec&) {
            return whole_instance(solve_proper_clique_dp(inst), inst, "proper_clique_dp");
          },
      },
      [](const Instance&, const InstanceClass& cls) { return cls.proper_clique(); });

  add_classified(
      registry,
      {
          "clique_matching",
          SolverKind::kOffline,
          OptimalityClass::kExact,
          1.0,
          "Lemma 3.1 maximum-weight matching: optimal for cliques with g = 2",
          [](const Instance& inst) { return inst.g() == 2 && is_clique(inst); },
          /*needs_budget=*/false,
          /*dispatch_priority=*/40,
          [](const Instance& inst, const SolverSpec&) {
            return whole_instance(solve_clique_g2_matching(inst), inst, "clique_matching");
          },
      },
      [](const Instance& inst, const InstanceClass& cls) {
        return inst.g() == 2 && cls.clique;
      });

  add_classified(
      registry,
      {
          "clique_setcover",
          SolverKind::kOffline,
          OptimalityClass::kApprox,
          2.0,
          "Lemma 3.2 greedy set cover: gH_g/(H_g+g-1)-approx for cliques, "
          "beats 2 for g <= 6 (family-size capped)",
          [](const Instance& inst) {
            return is_clique(inst) &&
                   clique_setcover_family_size(inst.size(), inst.g()) <= kMaxSetCoverFamily;
          },
          /*needs_budget=*/false,
          /*dispatch_priority=*/30,
          [](const Instance& inst, const SolverSpec&) {
            return whole_instance(solve_clique_setcover(inst), inst, "clique_setcover");
          },
      },
      [](const Instance& inst, const InstanceClass& cls) {
        return cls.clique &&
               clique_setcover_family_size(inst.size(), inst.g()) <= kMaxSetCoverFamily;
      });

  add_classified(
      registry,
      {
          "best_cut",
          SolverKind::kOffline,
          OptimalityClass::kApprox,
          2.0,
          "BestCut (Algorithm 1): (2 - 1/g)-approx for proper instances",
          [](const Instance& inst) { return is_proper(inst); },
          /*needs_budget=*/false,
          /*dispatch_priority=*/20,
          [](const Instance& inst, const SolverSpec&) {
            return whole_instance(solve_best_cut(inst), inst, "best_cut");
          },
      },
      [](const Instance&, const InstanceClass& cls) { return cls.proper; });

  add_classified(
      registry,
      {
          "first_fit",
          SolverKind::kOffline,
          OptimalityClass::kApprox,
          4.0,
          "FirstFit of [13] in non-increasing length order: 4-approx, any instance",
          [](const Instance&) { return true; },
          /*needs_budget=*/false,
          /*dispatch_priority=*/10,
          [](const Instance& inst, const SolverSpec&) {
            return whole_instance(solve_first_fit(inst), inst, "first_fit");
          },
      },
      [](const Instance&, const InstanceClass&) { return true; });

  registry.add({
      "first_fit_reference",
      SolverKind::kOffline,
      OptimalityClass::kApprox,
      4.0,
      "Quadratic reference FirstFit (pre-optimization baseline, ablation)",
      [](const Instance&) { return true; },
      /*needs_budget=*/false,
      /*dispatch_priority=*/-1,
      [](const Instance& inst, const SolverSpec&) {
        return whole_instance(solve_first_fit_reference(inst), inst, "first_fit_reference");
      },
  });

  registry.add({
      "local_search",
      SolverKind::kOffline,
      OptimalityClass::kHeuristic,
      0,
      "FirstFit + relocate/swap hill-climbing to a local optimum",
      [](const Instance&) { return true; },
      /*needs_budget=*/false,
      /*dispatch_priority=*/-1,
      [](const Instance& inst, const SolverSpec&) {
        SolveResult r = whole_instance(solve_first_fit(inst), inst, "first_fit");
        improve_schedule(inst, r.schedule);
        r.trace.push_back({inst.size(), "local_search"});
        return r;
      },
  });

  SolverInfo auto_info{
      "auto",
      SolverKind::kOffline,
      OptimalityClass::kApprox,
      4.0,
      "Per-component dispatch to the strongest applicable registered solver",
      [](const Instance&) { return true; },
      /*needs_budget=*/false,
      /*dispatch_priority=*/-1,
      [](const Instance& inst, const SolverSpec& spec) {
        // threads=1 is the option's default and here means "the exec
        // process default" (the historical dispatch behavior, which the
        // BUSYTIME_THREADS / --threads knobs steer); an explicit other
        // value pins this request's worker count.  Either way results are
        // identical — the determinism contract.
        const int threads = spec.options.threads == 1 ? 0 : spec.options.threads;
        const RequestContext* context = spec.context.get();
        // A Service InstanceHandle may have cached the decomposition; the
        // provider returns it only when it describes this exact instance.
        // The lookup is recorded as a "view" span (near-zero on a warm hit;
        // on the handle's very first use it covers the one-time build).
        const InstanceView* view = nullptr;
        if (context != nullptr && context->view_provider) {
          const auto v0 = std::chrono::steady_clock::now();
          view = context->view_provider(inst);
          obs::TraceContext* spans = obs::trace_of(context);
          if (view != nullptr && spans != nullptr)
            spans->add("view", obs::span_parent(context), v0,
                       std::chrono::steady_clock::now(),
                       static_cast<std::int64_t>(view->component_count()));
        }
        DispatchResult d = view != nullptr
                               ? solve_minbusy_auto(*view, threads, context)
                               : solve_minbusy_auto(inst, threads, context);
        SolveResult r;
        r.schedule = std::move(d.schedule);
        for (std::size_t i = 0; i < d.names.size(); ++i)
          r.trace.push_back({d.component_jobs[i], d.names[i]});
        return r;
      },
  };
  auto_info.consumes = {"threads"};
  registry.add(std::move(auto_info));

  registry.add({
      "exact",
      SolverKind::kExact,
      OptimalityClass::kExact,
      1.0,
      "Exact reference: O(3^n) clique partition DP or branch and bound "
      "(small instances only)",
      [](const Instance& inst) {
        return inst.size() <= kExactBranchBoundMaxJobs ||
               (inst.size() <= kExactCliqueDpMaxJobs && is_clique(inst));
      },
      /*needs_budget=*/false,
      /*dispatch_priority=*/-1,
      [](const Instance& inst, const SolverSpec&) {
        auto s = exact_minbusy(inst);
        if (!s) throw std::invalid_argument("instance too large for the exact solver");
        return whole_instance(std::move(*s), inst, "exact");
      },
  });
}

}  // namespace busytime::detail

// Per-request controls for the unified solver API: deadlines, cooperative
// cancellation, and the runtime context the Service facade threads through a
// SolverSpec.
//
// A request may carry a wall-clock deadline (SolverOptions::deadline_ms) and
// a CancelToken.  Both are *cooperative* and honored at component
// boundaries: the per-component dispatcher checks the context before
// solving each component, and every run path checks it once before the
// solver starts.  A solver is never interrupted mid-algorithm, so a request
// that trips a control produces a SolveResult with an empty schedule and
// status kDeadline / kCancelled instead of a partial, unverifiable one.
//
// The RequestContext also carries the cached-decomposition hook: a Service
// InstanceHandle exposes its memoized InstanceView (components +
// per-component classification) through `view_provider`, so warm re-solves
// against the same handle skip re-classification entirely.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <stdexcept>
#include <string>

namespace busytime {

namespace obs {
class MetricsRegistry;
class TraceContext;
}  // namespace obs

class Instance;
class InstanceView;

/// Outcome of one solve request.  kOk results carry the solver's schedule;
/// kDeadline / kCancelled / kShedded results carry an empty schedule
/// (valid == false) and report which control tripped.
enum class SolveStatus {
  kOk,
  kDeadline,   ///< the per-request deadline expired before the solve finished
  kCancelled,  ///< the request's CancelToken was triggered
  kShedded,    ///< admission control rejected the request at submit time
};

std::string to_string(SolveStatus status);

/// Cooperative cancellation handle.  Default-constructed tokens are inert
/// (never cancelled, nothing to trigger); CancelToken::make() allocates a
/// shared flag that any copy can trigger and any copy observes.  Thread-safe.
class CancelToken {
 public:
  CancelToken() = default;

  /// A token backed by a fresh shared flag.
  static CancelToken make() {
    CancelToken token;
    token.flag_ = std::make_shared<std::atomic<bool>>(false);
    return token;
  }

  /// True when this token can ever report cancellation.
  bool cancellable() const noexcept { return flag_ != nullptr; }

  /// Requests cancellation; a no-op on inert tokens.
  void request_cancel() const noexcept {
    if (flag_) flag_->store(true, std::memory_order_relaxed);
  }

  bool cancelled() const noexcept {
    return flag_ && flag_->load(std::memory_order_relaxed);
  }

 private:
  std::shared_ptr<std::atomic<bool>> flag_;
};

/// Thrown from a control checkpoint when the deadline has expired.  Internal
/// to the run path: run_solver and Service catch it and report
/// SolveStatus::kDeadline.
class DeadlineExceededError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Thrown from a control checkpoint when the CancelToken fired.  Internal to
/// the run path: run_solver and Service catch it and report
/// SolveStatus::kCancelled.
class RequestCancelledError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Runtime context of one request, carried by SolverSpec::context.  Built by
/// the Service (or by run_solver when options.deadline_ms / a cancel token
/// is set) and read at every control checkpoint; never serialized.
struct RequestContext {
  /// Absolute deadline instant; only meaningful when has_deadline.
  std::chrono::steady_clock::time_point deadline_at{};
  bool has_deadline = false;
  CancelToken cancel;
  /// Memoized decomposition hook, owned by a Service InstanceHandle that
  /// outlives the request.  Called with the instance being solved; returns
  /// the handle's cached view when it describes that exact Instance object
  /// (counting the build/hit), and nullptr otherwise — e.g. under a g=
  /// override, where the provider neither builds nor counts anything and
  /// the dispatcher classifies afresh.  Null function: no cache available.
  std::function<const InstanceView*(const Instance&)> view_provider;

  /// Metrics sink for this request's instrumentation (src/obs/).  Installed
  /// by the Service (its own registry); null means "the process-default
  /// registry" — instrumentation sites resolve through obs-layer helpers,
  /// never read this directly.  The installer guarantees the registry
  /// outlives the request.
  obs::MetricsRegistry* metrics = nullptr;
  /// Request-scoped span collector; null = tracing off (the common case).
  /// Shared with the caller that requested the trace, so the span tree
  /// survives the request.  TraceContext is internally synchronized — the
  /// const-RequestContext sharing rule still holds.
  std::shared_ptr<obs::TraceContext> trace;
  /// Root span id of this request in `trace` ("request"); deeper layers
  /// parent under it (or under the trace's current anchor).  0 = none.
  std::uint32_t trace_root = 0;

  /// Deadlines past ~31 years are treated as "no deadline": beyond any real
  /// request lifetime, and converting them to integer clock ticks would
  /// overflow (UB in duration_cast).
  static constexpr double kMaxDeadlineMs = 1e12;

  /// Resolves a deadline_ms option against the request's start instant (the
  /// single definition of deadline arithmetic, shared by Service::submit
  /// and the free-function path); <= 0 means no deadline.
  void set_deadline(std::chrono::steady_clock::time_point start,
                    double deadline_ms) {
    if (deadline_ms <= 0 || deadline_ms > kMaxDeadlineMs) return;
    has_deadline = true;
    deadline_at =
        start + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                    std::chrono::duration<double, std::milli>(deadline_ms));
  }

  /// Control checkpoint: throws RequestCancelledError / DeadlineExceededError
  /// when the corresponding control tripped.  Cancellation wins ties so a
  /// cancelled request reports kCancelled even after its deadline passed.
  void check() const {
    if (cancel.cancelled())
      throw RequestCancelledError("request cancelled");
    if (has_deadline && std::chrono::steady_clock::now() >= deadline_at)
      throw DeadlineExceededError("request deadline exceeded");
  }
};

}  // namespace busytime

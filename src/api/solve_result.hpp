// SolveResult: the response half of the unified solver API.
//
// Every registered solver — offline approximation, exact reference,
// throughput solver, extension, or online policy — returns the same shape:
// the schedule, its cost, the Observation 2.1 bounds, a per-component
// algorithm trace, and counters unified with the online engine's
// EngineStats, so benchmarks, tests, and the CLI compare solvers without
// per-family glue.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "api/request.hpp"
#include "core/bounds.hpp"
#include "core/schedule.hpp"
#include "online/engine_stats.hpp"

namespace busytime {

/// One entry of the per-component algorithm trace: which algorithm handled
/// how many jobs.  Solvers that do not decompose report a single entry.
struct ComponentTrace {
  std::size_t jobs = 0;
  std::string algo;

  friend bool operator==(const ComponentTrace& a, const ComponentTrace& b) {
    return a.jobs == b.jobs && a.algo == b.algo;
  }
};

struct SolveResult {
  /// Registry name of the solver that produced this result.
  std::string solver;
  /// Request outcome.  kDeadline / kCancelled results carry an empty
  /// schedule (valid == false): controls are honored at component
  /// boundaries, never mid-algorithm, so there is no partial schedule to
  /// report.
  SolveStatus status = SolveStatus::kOk;
  /// The computed (possibly partial, for throughput solvers) schedule.
  Schedule schedule;
  /// cost(s): total busy time of the schedule.
  Time cost = 0;
  /// Number of scheduled jobs (== instance size for MinBusy solvers).
  std::int64_t throughput = 0;
  /// Observation 2.1 bounds of the solved instance.
  CostBounds bounds;
  /// cost / best certified lower bound (0 when the instance is empty).
  double ratio_to_lower_bound = 0;
  /// Schedule passed core/validate.
  bool valid = false;
  /// Per-component algorithm trace, in component order.
  std::vector<ComponentTrace> trace;
  /// Unified counters.  Online policies fill every field from the streaming
  /// pool; offline solvers fill the jobs_assigned / machines_opened /
  /// online_cost subset (machines never close offline).
  EngineStats stats;
  /// Wall-clock time of the solver proper (excludes validation/bounds).
  double wall_ms = 0;
  /// Non-default spec options the chosen solver never looked at (e.g.
  /// budget= on an offline solver, epoch= on first-fit), in option-key
  /// order.  Callers asking for behavior the solver cannot deliver find out
  /// here instead of silently; the CLI surfaces them as warnings.
  std::vector<std::string> ignored_options;
  /// True when the Service's result cache served this result instead of a
  /// fresh solve.  Cached results are bit-identical to the computed one
  /// except for this flag and wall_ms (zeroed on a hit).
  bool cached = false;

  /// One-line human-readable summary for CLIs and logs.
  std::string summary() const;
};

}  // namespace busytime

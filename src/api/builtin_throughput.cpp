// Registry entries for the budgeted MaxThroughput solvers (Section 4).
// All of them require options.budget >= 0 and may return partial schedules;
// run_solver reports scheduled-job counts through SolveResult::throughput.
#include "api/registry.hpp"
#include "core/classify.hpp"
#include "throughput/clique_tput.hpp"
#include "throughput/exact_tput.hpp"
#include "throughput/one_sided_tput.hpp"
#include "throughput/proper_clique_tput_dp.hpp"

namespace busytime::detail {

namespace {

SolveResult from_tput(TputResult r, const Instance& inst, const std::string& algo) {
  SolveResult out;
  out.schedule = std::move(r.schedule);
  out.trace.push_back({inst.size(), algo});
  return out;
}

}  // namespace

void register_throughput_solvers(SolverRegistry& registry) {
  registry.add({
      "tput_one_sided",
      SolverKind::kThroughput,
      OptimalityClass::kExact,
      1.0,
      "Proposition 4.1: optimal MaxThroughput for one-sided cliques "
      "(shortest-prefix pricing)",
      [](const Instance& inst) { return is_one_sided(inst); },
      /*needs_budget=*/true,
      /*dispatch_priority=*/-1,
      [](const Instance& inst, const SolverSpec& spec) {
        return from_tput(solve_one_sided_tput(inst, spec.options.budget), inst,
                         "tput_one_sided");
      },
  });

  registry.add({
      "tput_proper_clique",
      SolverKind::kThroughput,
      OptimalityClass::kExact,
      1.0,
      "MostThroughputConsecutive DP (Theorem 4.2): optimal for proper cliques",
      [](const Instance& inst) { return is_clique(inst) && is_proper(inst); },
      /*needs_budget=*/true,
      /*dispatch_priority=*/-1,
      [](const Instance& inst, const SolverSpec& spec) {
        return from_tput(solve_proper_clique_tput(inst, spec.options.budget), inst,
                         "tput_proper_clique");
      },
  });

  registry.add({
      "tput_clique",
      SolverKind::kThroughput,
      OptimalityClass::kApprox,
      4.0,
      "Theorem 4.1 combined Alg1/Alg2: 4-approx MaxThroughput for cliques",
      [](const Instance& inst) { return is_clique(inst); },
      /*needs_budget=*/true,
      /*dispatch_priority=*/-1,
      [](const Instance& inst, const SolverSpec& spec) {
        return from_tput(solve_clique_tput(inst, spec.options.budget), inst,
                         "tput_clique");
      },
  });

  registry.add({
      "tput_exact",
      SolverKind::kThroughput,
      OptimalityClass::kExact,
      1.0,
      "Exact MaxThroughput reference (subset enumeration; small instances)",
      [](const Instance& inst) {
        return inst.size() <= kExactTputGeneralMaxJobs ||
               (inst.size() <= kExactTputCliqueMaxJobs && is_clique(inst));
      },
      /*needs_budget=*/true,
      /*dispatch_priority=*/-1,
      [](const Instance& inst, const SolverSpec& spec) {
        auto r = exact_tput(inst, spec.options.budget);
        if (!r) throw std::invalid_argument("instance too large for tput_exact");
        return from_tput(std::move(*r), inst, "tput_exact");
      },
  });
}

}  // namespace busytime::detail

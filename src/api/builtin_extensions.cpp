// Registry entries for the Section 5 extensions that share the base Instance
// model (per-job demands and weighted throughput).  The ring/tree/flexible
// extensions use different instance types and stay outside the registry.
#include "api/registry.hpp"
#include "core/classify.hpp"
#include "extensions/capacity_demands.hpp"
#include "extensions/weighted_tput.hpp"

namespace busytime::detail {

void register_extension_solvers(SolverRegistry& registry) {
  registry.add({
      "first_fit_demands",
      SolverKind::kExtension,
      OptimalityClass::kHeuristic,
      0,
      "Demand-aware FirstFit ([16] model): peak concurrent demand <= g per "
      "machine; unit demands recover first_fit semantics",
      [](const Instance&) { return true; },
      /*needs_budget=*/false,
      /*dispatch_priority=*/-1,
      [](const Instance& inst, const SolverSpec&) {
        SolveResult r;
        r.schedule = solve_first_fit_demands(inst);
        r.trace.push_back({inst.size(), "first_fit_demands"});
        return r;
      },
  });

  registry.add({
      "tput_weighted",
      SolverKind::kExtension,
      OptimalityClass::kExact,
      1.0,
      "Weighted MaxThroughput DP for proper cliques (Section 5 open problem; "
      "pseudo-polynomial Pareto-frontier scan)",
      [](const Instance& inst) { return is_clique(inst) && is_proper(inst); },
      /*needs_budget=*/true,
      /*dispatch_priority=*/-1,
      [](const Instance& inst, const SolverSpec& spec) {
        WeightedTputResult w = solve_proper_clique_weighted_tput(inst, spec.options.budget);
        SolveResult r;
        r.schedule = std::move(w.schedule);
        r.trace.push_back({inst.size(), "tput_weighted"});
        return r;
      },
  });
}

}  // namespace busytime::detail

#include "api/solver_spec.hpp"

#include <cmath>
#include <iomanip>
#include <limits>
#include <sstream>

#include "exec/thread_pool.hpp"

namespace busytime {

namespace {

std::int64_t parse_int(const std::string& key, const std::string& value) {
  if (value.empty()) throw SpecError("option '" + key + "' needs a value");
  std::size_t consumed = 0;
  std::int64_t parsed = 0;
  try {
    parsed = std::stoll(value, &consumed);
  } catch (const std::exception&) {
    throw SpecError("option '" + key + "': '" + value + "' is not an integer");
  }
  if (consumed != value.size())
    throw SpecError("option '" + key + "': trailing garbage in '" + value + "'");
  return parsed;
}

bool parse_bool(const std::string& key, const std::string& value) {
  if (value == "1" || value == "true") return true;
  if (value == "0" || value == "false") return false;
  throw SpecError("option '" + key + "': expected 0/1/true/false, got '" + value + "'");
}

}  // namespace

void SolverOptions::set(const std::string& key, const std::string& value) {
  if (key == "g") {
    const std::int64_t v = parse_int(key, value);
    if (v < 1 || v > std::numeric_limits<int>::max())
      throw SpecError("option 'g' must be an integer >= 1");
    g = static_cast<int>(v);
  } else if (key == "budget") {
    const std::int64_t v = parse_int(key, value);
    if (v < 0) throw SpecError("option 'budget' must be >= 0");
    budget = v;
  } else if (key == "epoch" || key == "epoch_length") {
    const std::int64_t v = parse_int(key, value);
    if (v < 1) throw SpecError("option 'epoch' must be >= 1");
    epoch_length = v;
  } else if (key == "max_batch") {
    const std::int64_t v = parse_int(key, value);
    if (v < 1 || v > std::numeric_limits<int>::max())
      throw SpecError("option 'max_batch' must be an integer >= 1");
    max_batch = static_cast<int>(v);
  } else if (key == "seed") {
    seed = static_cast<std::uint64_t>(parse_int(key, value));
  } else if (key == "improve") {
    improve = parse_bool(key, value);
  } else if (key == "threads") {
    const std::int64_t v = parse_int(key, value);
    if (v < 0 || v > exec::kMaxThreads)
      throw SpecError("option 'threads' must be in [0, " +
                      std::to_string(exec::kMaxThreads) + "]");
    threads = static_cast<int>(v);
  } else if (key == "deadline_ms") {
    double parsed = 0;
    std::size_t consumed = 0;
    try {
      parsed = std::stod(value, &consumed);
    } catch (const std::exception&) {
      throw SpecError("option 'deadline_ms': '" + value + "' is not a number");
    }
    if (consumed != value.size())
      throw SpecError("option 'deadline_ms': trailing garbage in '" + value + "'");
    // inf/nan would reach the deadline duration_cast as UB (and an
    // "infinite" deadline means no deadline, which is spelled 0).
    if (!std::isfinite(parsed) || parsed < 0)
      throw SpecError("option 'deadline_ms' must be a finite number >= 0");
    deadline_ms = parsed;
  } else {
    throw SpecError("unknown solver option '" + key + "'");
  }
}

std::vector<std::string> SolverOptions::non_default_keys() const {
  const SolverOptions defaults;
  std::vector<std::string> keys;
  if (g != defaults.g) keys.push_back("g");
  if (budget != defaults.budget) keys.push_back("budget");
  if (epoch_length != defaults.epoch_length) keys.push_back("epoch");
  if (max_batch != defaults.max_batch) keys.push_back("max_batch");
  if (seed != defaults.seed) keys.push_back("seed");
  if (improve != defaults.improve) keys.push_back("improve");
  if (threads != defaults.threads) keys.push_back("threads");
  if (deadline_ms != defaults.deadline_ms) keys.push_back("deadline_ms");
  return keys;
}

std::string SolverOptions::value_of(const std::string& key) const {
  if (key == "g") return std::to_string(g);
  if (key == "budget") return std::to_string(budget);
  if (key == "epoch") return std::to_string(epoch_length);
  if (key == "max_batch") return std::to_string(max_batch);
  if (key == "seed") return std::to_string(seed);
  if (key == "improve") return improve ? "1" : "0";
  if (key == "threads") return std::to_string(threads);
  if (key == "deadline_ms") {
    // Default ostream formatting switches to scientific notation for tiny
    // values (std::to_string would render 1e-7 as "0.000000", silently
    // turning a guaranteed-to-trip deadline into "no deadline" on reparse).
    std::ostringstream ms;
    ms << std::setprecision(15) << deadline_ms;
    return ms.str();
  }
  throw SpecError("unknown solver option '" + key + "'");
}

SolverOptions SolverOptions::parse(const std::string& text) {
  SolverOptions options;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t end = text.find(',', pos);
    if (end == std::string::npos) end = text.size();
    const std::string item = text.substr(pos, end - pos);
    if (item.empty()) throw SpecError("empty option in '" + text + "'");
    const std::size_t eq = item.find('=');
    if (eq == std::string::npos)
      throw SpecError("option '" + item + "' is not of the form key=value");
    options.set(item.substr(0, eq), item.substr(eq + 1));
    pos = end + 1;
  }
  return options;
}

SolverSpec SolverSpec::parse(const std::string& text) {
  SolverSpec spec;
  const std::size_t colon = text.find(':');
  spec.name = text.substr(0, colon);
  if (spec.name.empty()) throw SpecError("solver spec has an empty name");
  if (colon != std::string::npos)
    spec.options = SolverOptions::parse(text.substr(colon + 1));
  return spec;
}

std::string SolverSpec::to_string() const {
  std::string opts;
  for (const std::string& key : options.non_default_keys())
    opts += (opts.empty() ? "" : ",") + key + "=" + options.value_of(key);
  return opts.empty() ? name : name + ":" + opts;
}

}  // namespace busytime

#include "api/registry.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>

#include "algo/local_search.hpp"
#include "core/bounds.hpp"
#include "core/validate.hpp"
#include "obs/hooks.hpp"
#include "online/event.hpp"

namespace busytime {

std::string to_string(SolverKind kind) {
  switch (kind) {
    case SolverKind::kOffline: return "offline";
    case SolverKind::kExact: return "exact";
    case SolverKind::kThroughput: return "throughput";
    case SolverKind::kOnline: return "online";
    case SolverKind::kExtension: return "extension";
  }
  return "unknown";
}

std::string to_string(OptimalityClass optimality) {
  switch (optimality) {
    case OptimalityClass::kExact: return "exact";
    case OptimalityClass::kApprox: return "approx";
    case OptimalityClass::kHeuristic: return "heuristic";
  }
  return "unknown";
}

SolverRegistry& SolverRegistry::instance() {
  // Magic-static init is thread-safe; built-ins register exactly once.
  static SolverRegistry registry = [] {
    SolverRegistry r;
    detail::register_offline_solvers(r);
    detail::register_throughput_solvers(r);
    detail::register_online_solvers(r);
    detail::register_extension_solvers(r);
    return r;
  }();
  return registry;
}

void SolverRegistry::add(SolverInfo info) {
  if (info.name.empty()) throw std::invalid_argument("solver has an empty name");
  if (!info.run) throw std::invalid_argument("solver '" + info.name + "' has no run hook");
  if (!info.applicable)
    throw std::invalid_argument("solver '" + info.name + "' has no applicability predicate");
  const auto [it, inserted] = solvers_.emplace(info.name, std::move(info));
  if (!inserted)
    throw std::invalid_argument("solver '" + it->first + "' registered twice");
  // Rebuild the dispatch order; registration is rare, dispatch is hot.
  dispatchable_.clear();
  for (const auto& [name, solver] : solvers_)
    if (solver.dispatch_priority >= 0) dispatchable_.push_back(&solver);
  std::stable_sort(dispatchable_.begin(), dispatchable_.end(),
                   [](const SolverInfo* a, const SolverInfo* b) {
                     return a->dispatch_priority > b->dispatch_priority;
                   });
}

const SolverInfo* SolverRegistry::find(const std::string& name) const {
  const auto it = solvers_.find(name);
  return it == solvers_.end() ? nullptr : &it->second;
}

const SolverInfo& SolverRegistry::at(const std::string& name) const {
  if (const SolverInfo* info = find(name)) return *info;
  std::string known;
  for (const auto& n : names()) known += (known.empty() ? "" : ", ") + n;
  throw std::invalid_argument("unknown solver '" + name + "' (known: " + known + ")");
}

std::vector<std::string> SolverRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(solvers_.size());
  for (const auto& [name, info] : solvers_) out.push_back(name);
  return out;  // std::map iteration is already sorted
}

std::vector<const SolverInfo*> SolverRegistry::all() const {
  std::vector<const SolverInfo*> out;
  out.reserve(solvers_.size());
  for (const auto& [name, info] : solvers_) out.push_back(&info);
  return out;
}

std::vector<const SolverInfo*> SolverRegistry::by_kind(SolverKind kind) const {
  std::vector<const SolverInfo*> out;
  for (const auto& [name, info] : solvers_)
    if (info.kind == kind) out.push_back(&info);
  return out;
}

const std::vector<const SolverInfo*>& SolverRegistry::dispatchable() const {
  return dispatchable_;
}

namespace {

/// Uniform SolveResult epilogue shared by every run path: derives cost,
/// throughput, bounds, ratio, and validity from the schedule against the
/// instance the result is measured on.
void finalize_result(SolveResult& result, const Instance& inst) {
  result.schedule.ensure_size(inst.size());
  result.cost = result.schedule.cost(inst);
  result.throughput = result.schedule.throughput();
  result.bounds = compute_bounds(inst);
  result.ratio_to_lower_bound =
      inst.empty() ? 0 : ratio_to_lower_bound(inst, result.cost);
  result.valid = is_valid(inst, result.schedule);
}

/// Installs the runtime RequestContext when per-request controls are set and
/// no Service already installed one (the free-function path with
/// options.deadline_ms, a cancel token, or a requested trace: the deadline
/// clock starts here).  A trace installed this way has no "request" root —
/// its "solve" span is the root of the tree.
void ensure_context(SolverSpec& spec) {
  if (spec.context) return;
  if (spec.options.deadline_ms <= 0 && !spec.cancel.cancellable() &&
      spec.trace == nullptr)
    return;
  auto context = std::make_shared<RequestContext>();
  context->set_deadline(std::chrono::steady_clock::now(),
                        spec.options.deadline_ms);
  context->cancel = spec.cancel;
  context->trace = spec.trace;
  spec.context = std::move(context);
}

/// Opens the "solve" span covering the run path's timed region and anchors
/// deeper layers (dispatch, replay) under it; restores the anchor on close.
class SolveSpan {
 public:
  explicit SolveSpan(const RequestContext* ctx)
      : trace_(obs::trace_of(ctx)) {
    if (trace_ == nullptr) return;
    id_ = trace_->open("solve", ctx->trace_root);
    trace_->set_anchor(id_);
  }
  ~SolveSpan() {
    if (trace_ == nullptr) return;
    trace_->set_anchor(0);
    trace_->close(id_);
  }
  std::uint32_t id() const noexcept { return id_; }
  obs::TraceContext* trace() const noexcept { return trace_; }

 private:
  obs::TraceContext* trace_ = nullptr;
  std::uint32_t id_ = 0;
};

/// Run-path control knobs that never change result bytes: deadline_ms only
/// decides *whether* a result is computed, threads only how fast (the CLI
/// copies --threads into every spec while exec::set_default_threads already
/// honors it globally).  Neither is "consumed" by a solver nor "ignored" —
/// and neither belongs in a result-equivalence cache key.
bool is_control_key(const std::string& key) {
  return key == "deadline_ms" || key == "threads";
}

/// Whether the named solver's result depends on `key` (see
/// SolverInfo::consumes); g is consumed by the run path itself (capacity
/// override), budget by every budgeted solver, improve by the
/// offline/exact post-pass.  This single predicate is the canonicalization
/// shared by ignored-option reporting and SolverSpec::canonical_key, so
/// the CLI warning and the result cache agree on spec equivalence.
bool is_consumed_key(const SolverInfo& info, const std::string& key) {
  if (key == "g") return true;
  if (key == "budget") return info.needs_budget;
  if (key == "improve")
    return info.kind == SolverKind::kOffline || info.kind == SolverKind::kExact;
  return std::find(info.consumes.begin(), info.consumes.end(), key) !=
         info.consumes.end();
}

}  // namespace

std::vector<std::string> detail::ignored_options(const SolverInfo& info,
                                                 const SolverOptions& options) {
  std::vector<std::string> ignored;
  for (const std::string& key : options.non_default_keys())
    if (!is_control_key(key) && !is_consumed_key(info, key))
      ignored.push_back(key);
  return ignored;
}

std::string SolverSpec::canonical_key() const {
  const SolverInfo* info = SolverRegistry::instance().find(name);
  std::vector<std::string> keys;
  for (const std::string& key : options.non_default_keys()) {
    if (is_control_key(key)) continue;
    // Unknown solver: keep every non-control key (conservative — never
    // merges two specs a registered solver might distinguish).
    if (info != nullptr && !is_consumed_key(*info, key)) continue;
    keys.push_back(key);
  }
  std::sort(keys.begin(), keys.end());
  std::string out = name;
  for (const std::string& key : keys)
    out += "|" + key + "=" + options.value_of(key);
  return out;
}

namespace {

/// The kDeadline / kCancelled result shape: empty schedule sized to the
/// instance, nothing solved, nothing valid.
SolveResult control_tripped(const SolverInfo& info, SolveStatus status,
                            std::size_t jobs) {
  SolveResult result;
  result.solver = info.name;
  result.status = status;
  result.schedule.ensure_size(jobs);
  return result;
}

}  // namespace

SolveResult detail::solve_request(const Instance& inst,
                                  const SolverSpec& request) {
  const SolverInfo& info = SolverRegistry::instance().at(request.name);
  SolverSpec spec = request;
  ensure_context(spec);

  // Capacity override rebuilds the instance; everything downstream sees the
  // requested g.
  Instance overridden;
  const Instance* target = &inst;
  if (spec.options.g > 0 && spec.options.g != inst.g()) {
    overridden = Instance(inst.jobs(), spec.options.g);
    target = &overridden;
  }

  if (info.needs_budget && spec.options.budget < 0)
    throw SpecError("solver '" + info.name + "' needs option budget=T");
  if (!info.applicable(*target))
    throw NotApplicableError("solver '" + info.name +
                             "' is not applicable to this instance (" +
                             target->summary() + ")");

  obs::metrics_of(spec.context.get())
      .counter(obs::metric::kSolveRequests)
      .inc();
  const SolveSpan solve_span(spec.context.get());
  const auto t0 = std::chrono::steady_clock::now();
  SolveResult result;
  try {
    // Entry checkpoint (a whole-instance solver is one "component"); the
    // per-component dispatcher re-checks between components.
    if (spec.context) spec.context->check();
    result = info.run(*target, spec);
    // Local-search post-pass: only for solver families whose validity notion
    // is the base capacity count that improve_schedule preserves (extension
    // solvers may obey stricter rules, e.g. per-job demands).
    if (spec.options.improve &&
        (info.kind == SolverKind::kOffline || info.kind == SolverKind::kExact)) {
      result.schedule.ensure_size(target->size());
      const LocalSearchStats ls = improve_schedule(*target, result.schedule);
      if (ls.relocations + ls.swaps > 0)
        result.trace.push_back({target->size(), "local_search"});
    }
  } catch (const DeadlineExceededError&) {
    result = control_tripped(info, SolveStatus::kDeadline, target->size());
  } catch (const RequestCancelledError&) {
    result = control_tripped(info, SolveStatus::kCancelled, target->size());
  }
  const auto t1 = std::chrono::steady_clock::now();

  result.solver = info.name;
  result.wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  result.ignored_options = detail::ignored_options(info, spec.options);
  if (result.status != SolveStatus::kOk) return result;
  {
    const obs::ScopedSpan finalize_span(solve_span.trace(), "finalize",
                                        solve_span.id());
    finalize_result(result, *target);
  }
  // Offline solvers have no streaming pool; give their counters the offline
  // meaning so every SolveResult reports through the same fields.
  if (result.stats.jobs_assigned == 0 && result.throughput > 0) {
    result.stats.jobs_assigned = result.throughput;
    result.stats.machines_opened = result.schedule.machine_count();
    result.stats.open_machines = result.stats.machines_opened;
    result.stats.peak_open_machines = result.stats.machines_opened;
    result.stats.online_cost = result.cost;
  }
  return result;
}

SolveResult detail::solve_request(const EventTrace& trace,
                                  const SolverSpec& request) {
  if (!trace.has_cancels()) return solve_request(trace.base(), request);
  const SolverInfo& info = SolverRegistry::instance().at(request.name);
  SolverSpec spec = request;
  ensure_context(spec);

  // Capacity override rebuilds the trace; everything downstream sees the
  // requested g.
  EventTrace overridden;
  const EventTrace* target = &trace;
  if (spec.options.g > 0 && spec.options.g != trace.g()) {
    overridden = EventTrace(Instance(trace.base().jobs(), spec.options.g),
                            trace.cancels());
    target = &overridden;
  }

  const Instance& residual = target->residual();  // memoized on the trace
  if (info.kind != SolverKind::kOnline) return solve_request(residual, spec);
  if (!info.run_events)
    throw NotApplicableError("online solver '" + info.name +
                             "' cannot replay cancellation events");

  obs::metrics_of(spec.context.get())
      .counter(obs::metric::kSolveRequests)
      .inc();
  const SolveSpan solve_span(spec.context.get());
  const auto t0 = std::chrono::steady_clock::now();
  SolveResult result;
  try {
    // Event replays check controls once, at the start: shards replay whole
    // components anyway, so this is the same component-boundary contract.
    if (spec.context) spec.context->check();
    result = info.run_events(*target, spec);
  } catch (const DeadlineExceededError&) {
    result = control_tripped(info, SolveStatus::kDeadline, target->size());
  } catch (const RequestCancelledError&) {
    result = control_tripped(info, SolveStatus::kCancelled, target->size());
  }
  const auto t1 = std::chrono::steady_clock::now();

  result.solver = info.name;
  result.wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  result.ignored_options = detail::ignored_options(info, spec.options);
  if (result.status != SolveStatus::kOk) return result;
  // Everything downstream is measured against the residual instance — the
  // workload that actually ran.  The engine's incrementally maintained
  // online_cost equals the recomputed cost (refunds are exact).
  {
    const obs::ScopedSpan finalize_span(solve_span.trace(), "finalize",
                                        solve_span.id());
    finalize_result(result, residual);
  }
  return result;
}

}  // namespace busytime

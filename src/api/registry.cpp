#include "api/registry.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>

#include "algo/local_search.hpp"
#include "core/bounds.hpp"
#include "core/validate.hpp"
#include "online/event.hpp"

namespace busytime {

std::string to_string(SolverKind kind) {
  switch (kind) {
    case SolverKind::kOffline: return "offline";
    case SolverKind::kExact: return "exact";
    case SolverKind::kThroughput: return "throughput";
    case SolverKind::kOnline: return "online";
    case SolverKind::kExtension: return "extension";
  }
  return "unknown";
}

std::string to_string(OptimalityClass optimality) {
  switch (optimality) {
    case OptimalityClass::kExact: return "exact";
    case OptimalityClass::kApprox: return "approx";
    case OptimalityClass::kHeuristic: return "heuristic";
  }
  return "unknown";
}

SolverRegistry& SolverRegistry::instance() {
  // Magic-static init is thread-safe; built-ins register exactly once.
  static SolverRegistry registry = [] {
    SolverRegistry r;
    detail::register_offline_solvers(r);
    detail::register_throughput_solvers(r);
    detail::register_online_solvers(r);
    detail::register_extension_solvers(r);
    return r;
  }();
  return registry;
}

void SolverRegistry::add(SolverInfo info) {
  if (info.name.empty()) throw std::invalid_argument("solver has an empty name");
  if (!info.run) throw std::invalid_argument("solver '" + info.name + "' has no run hook");
  if (!info.applicable)
    throw std::invalid_argument("solver '" + info.name + "' has no applicability predicate");
  const auto [it, inserted] = solvers_.emplace(info.name, std::move(info));
  if (!inserted)
    throw std::invalid_argument("solver '" + it->first + "' registered twice");
  // Rebuild the dispatch order; registration is rare, dispatch is hot.
  dispatchable_.clear();
  for (const auto& [name, solver] : solvers_)
    if (solver.dispatch_priority >= 0) dispatchable_.push_back(&solver);
  std::stable_sort(dispatchable_.begin(), dispatchable_.end(),
                   [](const SolverInfo* a, const SolverInfo* b) {
                     return a->dispatch_priority > b->dispatch_priority;
                   });
}

const SolverInfo* SolverRegistry::find(const std::string& name) const {
  const auto it = solvers_.find(name);
  return it == solvers_.end() ? nullptr : &it->second;
}

const SolverInfo& SolverRegistry::at(const std::string& name) const {
  if (const SolverInfo* info = find(name)) return *info;
  std::string known;
  for (const auto& n : names()) known += (known.empty() ? "" : ", ") + n;
  throw std::invalid_argument("unknown solver '" + name + "' (known: " + known + ")");
}

std::vector<std::string> SolverRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(solvers_.size());
  for (const auto& [name, info] : solvers_) out.push_back(name);
  return out;  // std::map iteration is already sorted
}

std::vector<const SolverInfo*> SolverRegistry::all() const {
  std::vector<const SolverInfo*> out;
  out.reserve(solvers_.size());
  for (const auto& [name, info] : solvers_) out.push_back(&info);
  return out;
}

std::vector<const SolverInfo*> SolverRegistry::by_kind(SolverKind kind) const {
  std::vector<const SolverInfo*> out;
  for (const auto& [name, info] : solvers_)
    if (info.kind == kind) out.push_back(&info);
  return out;
}

const std::vector<const SolverInfo*>& SolverRegistry::dispatchable() const {
  return dispatchable_;
}

namespace {

/// Uniform SolveResult epilogue shared by every run_solver path: derives
/// cost, throughput, bounds, ratio, and validity from the schedule against
/// the instance the result is measured on.
void finalize_result(SolveResult& result, const Instance& inst) {
  result.schedule.ensure_size(inst.size());
  result.cost = result.schedule.cost(inst);
  result.throughput = result.schedule.throughput();
  result.bounds = compute_bounds(inst);
  result.ratio_to_lower_bound =
      inst.empty() ? 0 : ratio_to_lower_bound(inst, result.cost);
  result.valid = is_valid(inst, result.schedule);
}

}  // namespace

SolveResult run_solver(const Instance& inst, const SolverSpec& spec) {
  const SolverInfo& info = SolverRegistry::instance().at(spec.name);

  // Capacity override rebuilds the instance; everything downstream sees the
  // requested g.
  Instance overridden;
  const Instance* target = &inst;
  if (spec.options.g > 0 && spec.options.g != inst.g()) {
    overridden = Instance(inst.jobs(), spec.options.g);
    target = &overridden;
  }

  if (info.needs_budget && spec.options.budget < 0)
    throw SpecError("solver '" + info.name + "' needs option budget=T");
  if (!info.applicable(*target))
    throw NotApplicableError("solver '" + info.name +
                             "' is not applicable to this instance (" +
                             target->summary() + ")");

  const auto t0 = std::chrono::steady_clock::now();
  SolveResult result = info.run(*target, spec);
  // Local-search post-pass: only for solver families whose validity notion
  // is the base capacity count that improve_schedule preserves (extension
  // solvers may obey stricter rules, e.g. per-job demands).
  if (spec.options.improve &&
      (info.kind == SolverKind::kOffline || info.kind == SolverKind::kExact)) {
    result.schedule.ensure_size(target->size());
    const LocalSearchStats ls = improve_schedule(*target, result.schedule);
    if (ls.relocations + ls.swaps > 0)
      result.trace.push_back({target->size(), "local_search"});
  }
  const auto t1 = std::chrono::steady_clock::now();

  result.solver = info.name;
  result.wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  finalize_result(result, *target);
  // Offline solvers have no streaming pool; give their counters the offline
  // meaning so every SolveResult reports through the same fields.
  if (result.stats.jobs_assigned == 0 && result.throughput > 0) {
    result.stats.jobs_assigned = result.throughput;
    result.stats.machines_opened = result.schedule.machine_count();
    result.stats.open_machines = result.stats.machines_opened;
    result.stats.peak_open_machines = result.stats.machines_opened;
    result.stats.online_cost = result.cost;
  }
  return result;
}

SolveResult run_solver(const EventTrace& trace, const SolverSpec& spec) {
  if (!trace.has_cancels()) return run_solver(trace.base(), spec);
  const SolverInfo& info = SolverRegistry::instance().at(spec.name);

  // Capacity override rebuilds the trace; everything downstream sees the
  // requested g.
  EventTrace overridden;
  const EventTrace* target = &trace;
  if (spec.options.g > 0 && spec.options.g != trace.g()) {
    overridden = EventTrace(Instance(trace.base().jobs(), spec.options.g),
                            trace.cancels());
    target = &overridden;
  }

  const Instance& residual = target->residual();  // memoized on the trace
  if (info.kind != SolverKind::kOnline) return run_solver(residual, spec);
  if (!info.run_events)
    throw NotApplicableError("online solver '" + info.name +
                             "' cannot replay cancellation events");

  const auto t0 = std::chrono::steady_clock::now();
  SolveResult result = info.run_events(*target, spec);
  const auto t1 = std::chrono::steady_clock::now();

  result.solver = info.name;
  result.wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  // Everything downstream is measured against the residual instance — the
  // workload that actually ran.  The engine's incrementally maintained
  // online_cost equals the recomputed cost (refunds are exact).
  finalize_result(result, residual);
  return result;
}

}  // namespace busytime

// Registry entries for the online streaming policies.  Each adapter replays
// the instance in arrival (non-decreasing start) order through the policy's
// sharded stream driver (options.threads workers; 1 = the sequential single
// pool, with identical results either way) and reports the merged
// EngineStats verbatim, so online and offline results surface through the
// same SolveResult shape.  The run_events hook replays full event traces
// (arrivals interleaved with cancellations/preemptions) through the same
// driver — registering a policy here is all run_solver(EventTrace) needs.
#include "api/registry.hpp"
#include "online/stream_driver.hpp"

namespace busytime::detail {

namespace {

PolicyParams params_from(const SolverSpec& spec) {
  PolicyParams params;
  params.epoch_length = spec.options.epoch_length;
  params.max_batch = spec.options.max_batch;
  return params;
}

SolveResult from_replay(ReplayResult replay, std::size_t jobs,
                        const std::string& algo) {
  SolveResult r;
  r.schedule = std::move(replay.schedule);
  r.stats = replay.stats;
  r.trace.push_back({jobs, algo});
  return r;
}

/// Builds the SolverInfo shared by all three policies; `policy` drives both
/// the plain-instance and the event-trace replay.
SolverInfo stream_policy_info(std::string name, OnlinePolicy policy,
                              std::string description) {
  SolverInfo info;
  info.name = name;
  info.kind = SolverKind::kOnline;
  info.optimality = OptimalityClass::kHeuristic;
  info.ratio = 0;
  info.description = std::move(description);
  info.applicable = [](const Instance&) { return true; };
  info.needs_budget = false;
  info.dispatch_priority = -1;
  info.run = [policy, name](const Instance& inst, const SolverSpec& spec) {
    return from_replay(
        replay_stream(inst, policy, params_from(spec), spec.options.threads,
                      StreamOptions{}.min_shard_jobs, spec.context.get()),
        inst.size(), name);
  };
  info.run_events = [policy, name](const EventTrace& trace,
                                   const SolverSpec& spec) {
    return from_replay(
        replay_stream(trace, policy, params_from(spec), spec.options.threads,
                      StreamOptions{}.min_shard_jobs, spec.context.get()),
        trace.size(), name);
  };
  info.consumes = {"threads"};
  if (policy == OnlinePolicy::kEpochHybrid) {
    info.consumes.push_back("epoch");
    info.consumes.push_back("max_batch");
  }
  return info;
}

}  // namespace

void register_online_solvers(SolverRegistry& registry) {
  registry.add(stream_policy_info(
      "online_first_fit", OnlinePolicy::kFirstFit,
      "Streaming FirstFit: lowest-id open machine with a free slot "
      "(option: threads)"));

  registry.add(stream_policy_info(
      "online_best_fit", OnlinePolicy::kBestFit,
      "Streaming BestFit: minimal busy-interval extension among open "
      "machines (option: threads)"));

  registry.add(stream_policy_info(
      "epoch_hybrid", OnlinePolicy::kEpochHybrid,
      "Delayed commitment: batches one epoch of arrivals, re-optimizes each "
      "batch with the offline dispatcher (options: epoch, max_batch, "
      "threads)"));
}

}  // namespace busytime::detail

// Registry entries for the online streaming policies.  Each adapter replays
// the instance in arrival (non-decreasing start) order through the policy's
// sharded stream driver (options.threads workers; 1 = the sequential single
// pool, with identical results either way) and reports the merged
// EngineStats verbatim, so online and offline results surface through the
// same SolveResult shape.
#include "api/registry.hpp"
#include "online/stream_driver.hpp"

namespace busytime::detail {

namespace {

SolveResult stream_through(OnlinePolicy policy, const Instance& inst,
                           const SolverSpec& spec, const std::string& algo) {
  PolicyParams params;
  params.epoch_length = spec.options.epoch_length;
  params.max_batch = spec.options.max_batch;
  ReplayResult replay = replay_stream(inst, policy, params, spec.options.threads);
  SolveResult r;
  r.schedule = std::move(replay.schedule);
  r.stats = replay.stats;
  r.trace.push_back({inst.size(), algo});
  return r;
}

}  // namespace

void register_online_solvers(SolverRegistry& registry) {
  registry.add({
      "online_first_fit",
      SolverKind::kOnline,
      OptimalityClass::kHeuristic,
      0,
      "Streaming FirstFit: lowest-id open machine with a free slot "
      "(option: threads)",
      [](const Instance&) { return true; },
      /*needs_budget=*/false,
      /*dispatch_priority=*/-1,
      [](const Instance& inst, const SolverSpec& spec) {
        return stream_through(OnlinePolicy::kFirstFit, inst, spec, "online_first_fit");
      },
  });

  registry.add({
      "online_best_fit",
      SolverKind::kOnline,
      OptimalityClass::kHeuristic,
      0,
      "Streaming BestFit: minimal busy-interval extension among open "
      "machines (option: threads)",
      [](const Instance&) { return true; },
      /*needs_budget=*/false,
      /*dispatch_priority=*/-1,
      [](const Instance& inst, const SolverSpec& spec) {
        return stream_through(OnlinePolicy::kBestFit, inst, spec, "online_best_fit");
      },
  });

  registry.add({
      "epoch_hybrid",
      SolverKind::kOnline,
      OptimalityClass::kHeuristic,
      0,
      "Delayed commitment: batches one epoch of arrivals, re-optimizes each "
      "batch with the offline dispatcher (options: epoch, max_batch, threads)",
      [](const Instance&) { return true; },
      /*needs_budget=*/false,
      /*dispatch_priority=*/-1,
      [](const Instance& inst, const SolverSpec& spec) {
        return stream_through(OnlinePolicy::kEpochHybrid, inst, spec, "epoch_hybrid");
      },
  });
}

}  // namespace busytime::detail

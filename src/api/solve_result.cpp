#include "api/solve_result.hpp"

#include <sstream>

namespace busytime {

std::string SolveResult::summary() const {
  std::ostringstream oss;
  if (status != SolveStatus::kOk) {
    oss << solver << ": " << to_string(status) << " wall=" << wall_ms << "ms";
    return oss.str();
  }
  oss << solver << ": cost=" << cost << " tput=" << throughput
      << " machines=" << stats.machines_opened
      << " lb=" << bounds.lower_bound() << " ratio=" << ratio_to_lower_bound
      << " wall=" << wall_ms << "ms" << (valid ? "" : " INVALID");
  if (!trace.empty()) {
    oss << " [";
    for (std::size_t i = 0; i < trace.size(); ++i)
      oss << (i ? " " : "") << trace[i].algo << "(" << trace[i].jobs << ")";
    oss << "]";
  }
  if (!ignored_options.empty()) {
    oss << " ignored=";
    for (std::size_t i = 0; i < ignored_options.size(); ++i)
      oss << (i ? "," : "") << ignored_options[i];
  }
  if (cached) oss << " (cached)";
  return oss.str();
}

}  // namespace busytime

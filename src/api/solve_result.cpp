#include "api/solve_result.hpp"

#include <sstream>

namespace busytime {

std::string SolveResult::summary() const {
  std::ostringstream oss;
  oss << solver << ": cost=" << cost << " tput=" << throughput
      << " machines=" << stats.machines_opened
      << " lb=" << bounds.lower_bound() << " ratio=" << ratio_to_lower_bound
      << " wall=" << wall_ms << "ms" << (valid ? "" : " INVALID");
  if (!trace.empty()) {
    oss << " [";
    for (std::size_t i = 0; i < trace.size(); ++i)
      oss << (i ? " " : "") << trace[i].algo << "(" << trace[i].jobs << ")";
    oss << "]";
  }
  return oss.str();
}

}  // namespace busytime

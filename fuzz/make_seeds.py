#!/usr/bin/env python3
"""Regenerates the committed fuzz corpus seeds under fuzz/corpus/.

Run from the repository root after changing the wire format or the text
formats, then commit the outputs.  The byte layouts below mirror
src/net/binstream.hpp (busytime-wire-v1: little-endian fixed-width
integers, u32-length-prefixed strings and vectors) and src/net/protocol.hpp
(frame = magic u32 + type u8 + length u32 + payload).

Layout:
  corpus/frame_decoder/   well-formed frames (fuzz_frame_decoder seeds)
  corpus/wire_payloads/   selector byte + payload (fuzz_wire_payloads seeds)
  corpus/text_readers/    selector byte + document (fuzz_text_readers seeds)
  corpus/regressions/     inputs that once crashed / misbehaved; replayed by
                          tests/fuzz_regression_test.cpp through EVERY
                          decoder — these must keep failing cleanly forever
"""

import struct
from pathlib import Path

ROOT = Path(__file__).resolve().parent
DATA = ROOT.parent / "tests" / "data"

MAGIC = 0x42545731


def u8(v): return struct.pack("<B", v)
def u16(v): return struct.pack("<H", v)
def u32(v): return struct.pack("<I", v)
def i32(v): return struct.pack("<i", v)
def i64(v): return struct.pack("<q", v)
def wstr(s): return u32(len(s)) + s.encode()


def interval(start, completion):
    return i64(start) + i64(completion)


def job(start, completion, weight=1, demand=1):
    return interval(start, completion) + i64(weight) + i64(demand)


def instance(g, jobs):
    return i32(g) + u32(len(jobs)) + b"".join(jobs)


def cancel(job_id, at, preempt=False):
    return i32(job_id) + i64(at) + u8(1 if preempt else 0)


def event_trace(inst, cancels):
    return inst + u32(len(cancels)) + b"".join(cancels)


def schedule(assignment):
    return u32(len(assignment)) + b"".join(i32(m) for m in assignment)


def solver_info(name, kind, optimality, ratio, needs_budget, description):
    return (wstr(name) + wstr(kind) + wstr(optimality) +
            struct.pack("<d", ratio) + u8(1 if needs_budget else 0) +
            wstr(description))


def frame(msg_type, payload=b""):
    return u32(MAGIC) + u8(msg_type) + u32(len(payload)) + payload


def write(rel, data):
    path = ROOT / "corpus" / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_bytes(data)
    print(f"  {path.relative_to(ROOT.parent)}  ({len(data)} bytes)")


def main():
    inst = instance(2, [job(0, 10), job(5, 12), job(8, 20, weight=3, demand=2)])
    trace = event_trace(inst, [cancel(1, 7), cancel(2, 9, preempt=True)])

    # --- fuzz_frame_decoder seeds: well-formed frames ---------------------
    write("frame_decoder/ping.bin", frame(1))
    write("frame_decoder/load_instance.bin", frame(2, inst))
    write("frame_decoder/load_trace.bin", frame(3, trace))
    write("frame_decoder/error.bin",
          frame(63, u16(5) + wstr("payload failed to decode")))
    write("frame_decoder/two_frames.bin", frame(1) + frame(2, inst))

    # --- fuzz_wire_payloads seeds: selector byte + payload ----------------
    write("wire_payloads/interval.bin", u8(0) + interval(0, 10))
    write("wire_payloads/job.bin", u8(1) + job(3, 9, weight=2, demand=1))
    write("wire_payloads/instance.bin", u8(2) + inst)
    write("wire_payloads/trace.bin", u8(3) + trace)
    write("wire_payloads/schedule.bin", u8(4) + schedule([0, 1, -1]))
    write("wire_payloads/solver_info.bin",
          u8(9) + solver_info("first_fit", "heuristic", "4-approx", 4.0,
                              False, "arrival-order first fit"))

    # --- fuzz_text_readers seeds: selector byte + document ----------------
    write("text_readers/instance.txt",
          u8(0) + (DATA / "golden_general.txt").read_bytes())
    write("text_readers/trace.txt",
          u8(1) + (DATA / "golden_cancel_trace.txt").read_bytes())
    write("text_readers/schedule.txt",
          u8(2) + b"busytime-schedule v1\nn 3\nassign 0 0\nassign 1 1\n")
    write("text_readers/result.json",
          u8(3) + (DATA / "solve_result_golden.json").read_bytes())

    # --- regression corpus: must keep failing cleanly ---------------------
    # Interval whose signed length overflows Time (was UB in length()
    # before the unsigned-difference guard in net/binstream.cpp).
    write("regressions/interval_length_overflow.bin",
          interval(-(2**63), 2**63 - 1))
    # Forged element count: 4B jobs declared in a 12-byte payload (was a
    # multi-GiB reserve() before obinstream::require_count).
    write("regressions/forged_job_count.bin", i32(1) + u32(0xFFFFFFFF))
    # Reservation-overflow flavor: count * sizeof(Job) wraps std::size_t.
    write("regressions/reserve_overflow_count.bin",
          i32(1) + u32(0x80000001))
    # 300 nested arrays (was unbounded parser recursion before the JSON
    # depth guard in io/json.cpp).
    write("regressions/deep_nesting.json", b"[" * 300)
    # Desync inputs for the frame decoder: wrong magic, absurd length.
    write("regressions/bad_magic_frame.bin", b"\x00" * 9 + b"junk")
    write("regressions/oversized_frame.bin",
          u32(MAGIC) + u8(1) + u32(0xFFFFFFFF))
    # Payload with trailing bytes (from_payload must reject, not ignore).
    write("regressions/trailing_bytes.bin", interval(0, 10) + b"\x00")
    # Cancel record naming a job the instance does not have.
    write("regressions/cancel_bad_job_id.bin",
          event_trace(inst, [cancel(99, 5)]))


if __name__ == "__main__":
    main()

// libFuzzer harness for the plain-text and JSON readers in io/ — the
// formats experiment scripts and the CLI load from disk.  Build with
// -DBUSYTIME_BUILD_FUZZERS=ON; see fuzz/README.md.
//
// The first input byte selects the reader; the rest is the document.
// Contract under arbitrary text: readers either succeed or throw a
// ParseError / std::runtime_error with a useful message.  Crashes, hangs,
// unbounded memory, and other exception types are findings.

#include <cstddef>
#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <string>

#include "io/serialize.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  if (size == 0) return 0;
  const std::string text(reinterpret_cast<const char*>(data + 1), size - 1);
  try {
    switch (data[0] % 4) {
      case 0: busytime::instance_from_string(text); break;
      case 1: busytime::event_trace_from_string(text); break;
      case 2: {
        // expected_jobs comes from the harness, as it would from a caller
        // holding the paired instance; key it off the selector byte.
        std::istringstream is(text);
        busytime::read_schedule(is, (data[0] >> 2) % 64);
        break;
      }
      case 3: busytime::result_from_json(text); break;
    }
  } catch (const std::runtime_error&) {
    // ParseError, JsonError and friends all derive from runtime_error;
    // rejecting hostile text with one of these is the expected outcome.
  }
  return 0;
}

// libFuzzer harness for net::FrameDecoder, the incremental frame parser
// every remote connection's bytes flow through.  Build with
// -DBUSYTIME_BUILD_FUZZERS=ON (clang only); see fuzz/README.md.
//
// The harness replays the input through feed() in strides chosen by the
// first byte, so one corpus entry exercises many reassembly paths.  The
// decoder's contract under arbitrary bytes:
//   - next() never throws and never returns a payload above the cap,
//   - poisoning is sticky (every later next() reports kError).

#include <algorithm>
#include <cstddef>
#include <cstdint>

#include "net/protocol.hpp"

using busytime::net::Frame;
using busytime::net::FrameDecoder;

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  FrameDecoder decoder;
  const std::size_t stride = size ? static_cast<std::size_t>(data[0] % 7) + 1
                                  : 1;
  Frame frame;
  bool poisoned = false;
  for (std::size_t off = 0; off < size;) {
    const std::size_t n = std::min(stride, size - off);
    decoder.feed(reinterpret_cast<const char*>(data + off), n);
    off += n;
    FrameDecoder::Status status;
    while ((status = decoder.next(frame)) == FrameDecoder::Status::kFrame) {
      if (frame.payload.size() > busytime::net::kMaxPayloadBytes)
        __builtin_trap();
      if (poisoned) __builtin_trap();  // frames must stop after poisoning
    }
    if (status == FrameDecoder::Status::kError) poisoned = true;
    if (poisoned != decoder.poisoned()) __builtin_trap();
  }
  if (poisoned && decoder.next(frame) != FrameDecoder::Status::kError)
    __builtin_trap();
  return 0;
}

// libFuzzer harness for every busytime-wire-v1 payload decoder
// (net::from_payload<T>).  Build with -DBUSYTIME_BUILD_FUZZERS=ON; see
// fuzz/README.md.
//
// The first input byte selects the payload type; the rest is the payload.
// Contract under arbitrary bytes: a decoder either throws WireError or
// returns a value whose re-encoding is a fixpoint —
// to_payload(from_payload(to_payload(v))) == to_payload(v).  Any other
// exception, crash, or oracle mismatch is a finding.

#include <cstddef>
#include <cstdint>
#include <string>

#include "net/binstream.hpp"
#include "net/protocol.hpp"

namespace {

using busytime::net::from_payload;
using busytime::net::to_payload;
using busytime::net::WireError;

template <typename T>
void decode_and_check(const std::string& payload) {
  T value{};
  try {
    value = from_payload<T>(payload);
  } catch (const WireError&) {
    return;  // rejecting hostile bytes is the expected outcome
  }
  // Round-trip oracle.  The re-encoding may legitimately differ from the
  // input (e.g. SolveResult fills in fields a short payload omitted), but
  // it must decode cleanly and re-encode to the same bytes.
  const std::string encoded = to_payload(value);
  const T again = from_payload<T>(encoded);  // must not throw
  if (to_payload(again) != encoded) __builtin_trap();
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  if (size == 0) return 0;
  const std::string payload(reinterpret_cast<const char*>(data + 1), size - 1);
  switch (data[0] % 10) {
    case 0: decode_and_check<busytime::Interval>(payload); break;
    case 1: decode_and_check<busytime::Job>(payload); break;
    case 2: decode_and_check<busytime::Instance>(payload); break;
    case 3: decode_and_check<busytime::EventTrace>(payload); break;
    case 4: decode_and_check<busytime::Schedule>(payload); break;
    case 5: decode_and_check<busytime::CostBounds>(payload); break;
    case 6: decode_and_check<busytime::EngineStats>(payload); break;
    case 7: decode_and_check<busytime::SolveResult>(payload); break;
    case 8: decode_and_check<busytime::SolverSpec>(payload); break;
    case 9: decode_and_check<busytime::net::WireSolverInfo>(payload); break;
  }
  return 0;
}

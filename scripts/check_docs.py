#!/usr/bin/env python3
"""Docs consistency checks, run by the CI docs job.

1. Dead-link check: every relative markdown link in README.md and docs/*.md
   must resolve to an existing file (anchors and external URLs are skipped).
2. Registry cross-check: the solver names documented in docs/SOLVERS.md must
   match `busytime_cli --list-solvers --json` exactly, so the catalog cannot
   silently drift from the registry.
3. Bench-catalog cross-check: every bench/*.cpp binary must have a
   backtick-quoted row in docs/EXPERIMENTS.md, and every binary the catalog
   names must exist, so the experiment catalog cannot drift either.
4. Metric-catalog cross-check: the metric names documented in
   docs/OBSERVABILITY.md must match `busytime_cli --list-metrics --json`
   exactly (both directions), so the observability catalog cannot drift
   from obs::builtin_metric_defs().
5. Lint-rule cross-check: the rule table in docs/CORRECTNESS.md must match
   `lint_project.py --list-rules` exactly (both directions), so the
   documented lint contract cannot drift from the enforced one.

Usage: check_docs.py [--cli=PATH_TO_BUSYTIME_CLI]
       (omit --cli to skip the checks that need the built CLI)
"""

import json
import re
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
# Backtick-quoted names in the first column of a markdown table row.
SOLVER_ROW_RE = re.compile(r"^\|\s*`([a-z0-9_]+)`\s*\|")
# Metric names are dotted (service.requests, exec.busy_us_total).
METRIC_ROW_RE = re.compile(r"^\|\s*`([a-z0-9_.]+)`\s*\|")


def check_links():
    failures = []
    files = [REPO / "README.md"] + sorted((REPO / "docs").glob("*.md"))
    for md in files:
        for line_no, line in enumerate(md.read_text().splitlines(), 1):
            for target in LINK_RE.findall(line):
                if target.startswith(("http://", "https://", "mailto:", "#")):
                    continue
                path = target.split("#")[0]
                if not path:
                    continue
                resolved = (md.parent / path).resolve()
                if not resolved.exists():
                    failures.append(f"{md.relative_to(REPO)}:{line_no}: "
                                    f"dead link -> {target}")
    return failures


def check_solver_catalog(cli):
    documented = set()
    for line in (REPO / "docs" / "SOLVERS.md").read_text().splitlines():
        match = SOLVER_ROW_RE.match(line.strip())
        if match:
            documented.add(match.group(1))
    # Option-table rows are not solver names; only count names the registry
    # could know.  (The options table uses `key=value` cells, which the
    # regex already rejects.)
    out = subprocess.run([cli, "--list-solvers", "--json"],
                         check=True, capture_output=True, text=True).stdout
    registered = {entry["name"] for entry in json.loads(out)}

    failures = []
    for name in sorted(registered - documented):
        failures.append(f"docs/SOLVERS.md: solver '{name}' is registered "
                        f"but not documented")
    for name in sorted(documented - registered):
        failures.append(f"docs/SOLVERS.md: solver '{name}' is documented "
                        f"but not registered")
    if not failures:
        print(f"solver catalog ok: {len(registered)} solvers documented")
    return failures


def check_metric_catalog(cli):
    documented = set()
    for line in (REPO / "docs" / "OBSERVABILITY.md").read_text().splitlines():
        match = METRIC_ROW_RE.match(line.strip())
        if match and "." in match.group(1):  # dotted names only: skip
            documented.add(match.group(1))   # span/option table rows
    out = subprocess.run([cli, "--list-metrics", "--json"],
                         check=True, capture_output=True, text=True).stdout
    registered = {entry["name"] for entry in json.loads(out)}

    failures = []
    for name in sorted(registered - documented):
        failures.append(f"docs/OBSERVABILITY.md: metric '{name}' is "
                        f"registered but not documented")
    for name in sorted(documented - registered):
        failures.append(f"docs/OBSERVABILITY.md: metric '{name}' is "
                        f"documented but not registered")
    if not failures:
        print(f"metric catalog ok: {len(registered)} metrics documented")
    return failures


def check_bench_catalog():
    text = (REPO / "docs" / "EXPERIMENTS.md").read_text()
    documented = set(re.findall(r"`((?:tbl_|fig|perf_)[a-z0-9_]+)`", text))
    built = {src.stem for src in (REPO / "bench").glob("*.cpp")}

    failures = []
    for name in sorted(built - documented):
        failures.append(f"docs/EXPERIMENTS.md: bench binary '{name}' exists "
                        f"but is not catalogued")
    for name in sorted(documented - built):
        failures.append(f"docs/EXPERIMENTS.md: '{name}' is catalogued but "
                        f"bench/{name}.cpp does not exist")
    if not failures:
        print(f"bench catalog ok: {len(built)} binaries catalogued")
    return failures


def check_lint_rule_catalog():
    # Backtick-quoted kebab-case ids in the first column of the rule table.
    rule_row_re = re.compile(r"^\|\s*`([a-z][a-z0-9-]+)`\s*\|")
    documented = set()
    for line in (REPO / "docs" / "CORRECTNESS.md").read_text().splitlines():
        match = rule_row_re.match(line.strip())
        if match:
            documented.add(match.group(1))
    out = subprocess.run(
        [sys.executable, str(REPO / "scripts" / "lint_project.py"),
         "--list-rules"],
        check=True, capture_output=True, text=True).stdout
    enforced = {line.split("\t")[0] for line in out.splitlines() if line}

    failures = []
    for name in sorted(enforced - documented):
        failures.append(f"docs/CORRECTNESS.md: lint rule '{name}' is "
                        f"enforced but not documented")
    for name in sorted(documented - enforced):
        failures.append(f"docs/CORRECTNESS.md: lint rule '{name}' is "
                        f"documented but not enforced by lint_project.py")
    if not failures:
        print(f"lint rule catalog ok: {len(enforced)} rules documented")
    return failures


def main():
    cli = None
    for arg in sys.argv[1:]:
        if arg.startswith("--cli="):
            cli = arg[len("--cli="):]
        else:
            sys.exit(f"unknown argument: {arg}")

    failures = check_links()
    if not failures:
        print("link check ok")
    failures += check_bench_catalog()
    failures += check_lint_rule_catalog()
    if cli:
        failures += check_solver_catalog(cli)
        failures += check_metric_catalog(cli)
    for failure in failures:
        print(f"error: {failure}", file=sys.stderr)
    sys.exit(1 if failures else 0)


if __name__ == "__main__":
    main()

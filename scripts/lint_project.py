#!/usr/bin/env python3
"""Project-specific lint pass, enforced in CI and registered under ctest.

Rules (see `--list-rules`; docs/CORRECTNESS.md mirrors this list and
scripts/check_docs.py fails if the two drift):

  header-pragma-once          every src/**/*.hpp starts its include guard
                              with #pragma once
  no-using-namespace-headers  no `using namespace` in any src/**/*.hpp
  umbrella-complete-sorted    src/busytime.hpp includes every src header,
                              exactly once, in sorted order
  no-stdio-in-library         no std::cout / printf( / rand( / time( in
                              library code (src/; CLI, bench and examples
                              live outside src/ and may print)
  metric-catalog-sorted       obs::builtin_metric_defs() entries stay sorted
                              by metric name
  cmake-sources-complete      the explicit BUSYTIME_SOURCES list in
                              CMakeLists.txt matches src/**/*.cpp exactly

Header *self-containment* is enforced by the build itself: CMake generates
one TU per header into the `busytime_header_check` target, so it is not a
rule here.

Modes:
  lint_project.py               lint the repository tree (exit 1 on findings)
  lint_project.py --root=DIR    lint another tree (used by the self-test)
  lint_project.py --list-rules  print `id<TAB>description` lines
  lint_project.py --self-test   seed violations into a temp tree and assert
                                every rule fires and the exit is nonzero
"""

import re
import sys
import tempfile
from pathlib import Path

RULES = [
    ("header-pragma-once",
     "every src/**/*.hpp contains #pragma once"),
    ("no-using-namespace-headers",
     "no `using namespace` in any src/**/*.hpp"),
    ("umbrella-complete-sorted",
     "src/busytime.hpp includes every src header, exactly once, sorted"),
    ("no-stdio-in-library",
     "no std::cout / printf( / rand( / time( in library code under src/"),
    ("metric-catalog-sorted",
     "obs::builtin_metric_defs() entries are sorted by metric name"),
    ("cmake-sources-complete",
     "the BUSYTIME_SOURCES list in CMakeLists.txt matches src/**/*.cpp"),
]

STRING_RE = re.compile(r'"(?:\\.|[^"\\])*"')
BLOCK_COMMENT_RE = re.compile(r"/\*.*?\*/", re.S)
LINE_COMMENT_RE = re.compile(r"//[^\n]*")
# Word-boundary keeps fprintf/snprintf, srand, busy_time() etc. legal.
STDIO_RE = re.compile(r"std::cout\b|\bprintf\s*\(|\brand\s*\(|\btime\s*\(")
USING_NAMESPACE_RE = re.compile(r"^\s*using\s+namespace\b")
METRIC_CONST_RE = re.compile(r"inline constexpr char (k\w+)\[\]\s*=\s*\"([^\"]+)\"")
METRIC_USE_RE = re.compile(r"\{metric::(k\w+),")


def strip_code(text):
    """Removes string literals and comments so lint patterns only ever match
    real code tokens (doc comments legitimately mention std::cout)."""
    text = STRING_RE.sub('""', text)
    text = BLOCK_COMMENT_RE.sub(lambda m: "\n" * m.group(0).count("\n"), text)
    return LINE_COMMENT_RE.sub("", text)


def src_headers(root):
    return sorted((root / "src").rglob("*.hpp"))


def check_pragma_once(root):
    failures = []
    for hpp in src_headers(root):
        if "#pragma once" not in hpp.read_text():
            failures.append(f"header-pragma-once: {hpp.relative_to(root)}: "
                            f"missing #pragma once")
    return failures


def check_using_namespace(root):
    failures = []
    for hpp in src_headers(root):
        for line_no, line in enumerate(strip_code(hpp.read_text()).splitlines(), 1):
            if USING_NAMESPACE_RE.match(line):
                failures.append(
                    f"no-using-namespace-headers: {hpp.relative_to(root)}:"
                    f"{line_no}: `using namespace` leaks into every includer")
    return failures


def check_umbrella(root):
    umbrella = root / "src" / "busytime.hpp"
    if not umbrella.exists():
        return ["umbrella-complete-sorted: src/busytime.hpp is missing"]
    included = re.findall(r'#include "([^"]+)"', umbrella.read_text())
    expected = sorted(
        str(h.relative_to(root / "src")) for h in src_headers(root)
        if h != umbrella)
    failures = []
    for name in sorted(set(expected) - set(included)):
        failures.append(f"umbrella-complete-sorted: src/busytime.hpp: "
                        f"missing #include \"{name}\"")
    for name in sorted(set(included) - set(expected)):
        failures.append(f"umbrella-complete-sorted: src/busytime.hpp: "
                        f"includes nonexistent \"{name}\"")
    if not failures and included != expected:
        failures.append("umbrella-complete-sorted: src/busytime.hpp: "
                        "includes are complete but not sorted")
    return failures


def check_stdio(root):
    failures = []
    for ext in ("*.hpp", "*.cpp"):
        for path in sorted((root / "src").rglob(ext)):
            for line_no, line in enumerate(strip_code(path.read_text()).splitlines(), 1):
                match = STDIO_RE.search(line)
                if match:
                    failures.append(
                        f"no-stdio-in-library: {path.relative_to(root)}:"
                        f"{line_no}: library code must not call "
                        f"'{match.group(0).strip()}' (use obs/ or return data)")
    return failures


def check_metric_catalog(root):
    hpp = root / "src" / "obs" / "metrics.hpp"
    cpp = root / "src" / "obs" / "metrics.cpp"
    if not hpp.exists() or not cpp.exists():
        return []  # tree has no obs layer; nothing to check
    names = dict(METRIC_CONST_RE.findall(hpp.read_text()))
    body = cpp.read_text()
    start = body.find("builtin_metric_defs()")
    end = body.find("return defs;", start)
    if start < 0 or end < 0:
        return ["metric-catalog-sorted: src/obs/metrics.cpp: cannot locate "
                "builtin_metric_defs()"]
    order = [names.get(k, k) for k in METRIC_USE_RE.findall(body[start:end])]
    failures = []
    for prev, cur in zip(order, order[1:]):
        if cur <= prev:
            failures.append(f"metric-catalog-sorted: src/obs/metrics.cpp: "
                            f"'{cur}' listed after '{prev}' (catalog must be "
                            f"sorted and duplicate-free)")
    return failures


def check_cmake_sources(root):
    cmake = root / "CMakeLists.txt"
    if not cmake.exists():
        return ["cmake-sources-complete: CMakeLists.txt is missing"]
    text = cmake.read_text()
    match = re.search(r"set\(BUSYTIME_SOURCES\b(.*?)\)", text, re.S)
    if not match:
        return ["cmake-sources-complete: CMakeLists.txt: no explicit "
                "set(BUSYTIME_SOURCES ...) block"]
    listed = set(re.findall(r"src/[\w/.-]+\.cpp", match.group(1)))
    actual = {str(p.relative_to(root)).replace("\\", "/")
              for p in (root / "src").rglob("*.cpp")}
    failures = []
    for name in sorted(actual - listed):
        failures.append(f"cmake-sources-complete: CMakeLists.txt: {name} "
                        f"exists but is not in BUSYTIME_SOURCES")
    for name in sorted(listed - actual):
        failures.append(f"cmake-sources-complete: CMakeLists.txt: {name} "
                        f"is listed but does not exist")
    return failures


CHECKS = [check_pragma_once, check_using_namespace, check_umbrella,
          check_stdio, check_metric_catalog, check_cmake_sources]


def run_checks(root):
    failures = []
    for check in CHECKS:
        failures += check(root)
    return failures


# ------------------------------------------------------------- self-test --

def seed_violation_tree(root):
    """Writes a miniature repo violating every rule at least once."""
    (root / "src" / "core").mkdir(parents=True)
    (root / "src" / "obs").mkdir(parents=True)
    # header-pragma-once + no-using-namespace-headers
    (root / "src" / "core" / "naughty.hpp").write_text(
        "#ifndef NAUGHTY_HPP\n#define NAUGHTY_HPP\n"
        "using namespace std;\n#endif\n")
    # no-stdio-in-library (each banned call on its own line; the comment and
    # string mentions must NOT fire)
    (root / "src" / "core" / "good.cpp").write_text(
        '#include <cstdio>\n'
        '// a comment saying std::cout is fine\n'
        'const char* kMsg = "printf( in a string is fine";\n'
        'void f() { std::cout << 1; }\n'
        'void g() { printf("x"); }\n'
        'int h() { return rand(); }\n'
        'long t() { return time(nullptr); }\n')
    (root / "src" / "core" / "missing.cpp").write_text("int unused;\n")
    # umbrella-complete-sorted: missing naughty.hpp, includes a ghost header
    (root / "src" / "busytime.hpp").write_text(
        '#pragma once\n#include "core/ghost.hpp"\n')
    # metric-catalog-sorted: defs out of order
    (root / "src" / "obs" / "metrics.hpp").write_text(
        '#pragma once\n'
        'inline constexpr char kBbb[] = "b.b";\n'
        'inline constexpr char kAaa[] = "a.a";\n')
    (root / "src" / "obs" / "metrics.cpp").write_text(
        'const int& builtin_metric_defs() {\n'
        '  static const int defs = 0;\n'
        '  {metric::kBbb, 1};\n'
        '  {metric::kAaa, 1};\n'
        '  return defs;\n'
        '}\n')
    # cmake-sources-complete: missing.cpp absent, phantom.cpp listed
    (root / "CMakeLists.txt").write_text(
        "set(BUSYTIME_SOURCES\n"
        "    src/core/good.cpp\n"
        "    src/core/phantom.cpp\n"
        "    src/obs/metrics.cpp)\n")


def self_test():
    with tempfile.TemporaryDirectory(prefix="busytime_lint_selftest_") as tmp:
        root = Path(tmp)
        seed_violation_tree(root)
        failures = run_checks(root)
        fired = {f.split(":", 1)[0] for f in failures}
        missing = [rule for rule, _ in RULES if rule not in fired]
        for f in failures:
            print(f"  seeded: {f}")
        if missing:
            print(f"self-test FAILED: rules never fired: {missing}",
                  file=sys.stderr)
            return 1
        # False-positive guard: the comment/string mentions must not fire.
        stdio = [f for f in failures if f.startswith("no-stdio-in-library")]
        if len(stdio) != 4:
            print(f"self-test FAILED: expected exactly 4 stdio findings "
                  f"(cout/printf/rand/time), got {len(stdio)}", file=sys.stderr)
            return 1
        print(f"self-test ok: all {len(RULES)} rules fired "
              f"({len(failures)} seeded findings)")
        return 0


def main():
    root = Path(__file__).resolve().parent.parent
    mode = "lint"
    for arg in sys.argv[1:]:
        if arg == "--self-test":
            mode = "self-test"
        elif arg == "--list-rules":
            mode = "list-rules"
        elif arg.startswith("--root="):
            root = Path(arg[len("--root="):])
        else:
            sys.exit(f"unknown argument: {arg}")

    if mode == "list-rules":
        for rule, description in RULES:
            print(f"{rule}\t{description}")
        return
    if mode == "self-test":
        sys.exit(self_test())

    failures = run_checks(root)
    for failure in failures:
        print(f"error: {failure}", file=sys.stderr)
    if not failures:
        print(f"lint ok: {len(RULES)} rules over "
              f"{len(src_headers(root))} headers")
    sys.exit(1 if failures else 0)


if __name__ == "__main__":
    main()
